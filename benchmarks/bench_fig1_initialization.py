"""E5 — Figure 1: initialization cost.

Paper claims (Figure 1 and Sections 3.2/6): the initialization phase — global
discovery plus clusterization via Byzantine agreement — runs while the
network is small (``n_t0`` as low as ``sqrt(N)``) and costs
``O(N^{3/2} log N)`` overall; the discovery sub-phase costs ``O(n * e)``
messages and the clusterization sub-phase ``O~(n sqrt n)``.  The conclusion
notes the authors would like an initialization in ``o(n_t0^2)`` "as opposed
to ``O(n_t0^3)``" — i.e. the paper's own accounting of the worst case is
cubic in ``n_t0`` and super-quadratic behaviour is expected.

What we run: initialize populations of increasing size ``n_t0`` (message-level
discovery for the smaller ones, the metered cost model above that) and record
the measured cost of each sub-phase, then fit the growth exponent in
``n_t0``.  The shape check: the exponent lies between 1.5 (the clusterization
bound) and 3 (the paper's worst case), and discovery dominates as predicted.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import ExperimentTable, fit_power_law
from repro.core.initialization import NowInitializer

from common import run_once, scaled_parameters

SWEEP = [96, 160, 256, 420, 700]
MAX_SIZE = 16384


def run_for_size(initial_size: int, seed: int):
    params = scaled_parameters(MAX_SIZE, tau=0.1)
    initializer = NowInitializer(
        params, random.Random(seed), discovery_mode="auto", message_discovery_limit=200
    )
    state, report = initializer.build(initial_size=initial_size, byzantine_fraction=0.1)
    return {
        "initial_size": initial_size,
        "discovery": report.discovery_messages,
        "agreement": report.agreement_messages,
        "clusterization": report.clusterization_messages,
        "total": report.total_messages,
        "rounds": report.total_rounds,
        "clusters": report.cluster_count,
        "mode": report.discovery_mode,
        "committee_honest": report.committee_honest_fraction,
    }


def run_experiment():
    return [run_for_size(size, seed=400 + index) for index, size in enumerate(SWEEP)]


@pytest.mark.experiment("E5")
def test_fig1_initialization_cost(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title="E5 Figure 1 - initialization cost vs initial size n_t0",
        headers=[
            "n_t0",
            "discovery msgs",
            "agreement msgs",
            "clusterization msgs",
            "total msgs",
            "rounds",
            "#clusters",
            "discovery mode",
        ],
    )
    for row in rows:
        table.add_row(
            row["initial_size"],
            row["discovery"],
            row["agreement"],
            row["clusterization"],
            row["total"],
            row["rounds"],
            row["clusters"],
            row["mode"],
        )
    sizes = [row["initial_size"] for row in rows]
    total_fit = fit_power_law(sizes, [row["total"] for row in rows])
    discovery_fit = fit_power_law(sizes, [row["discovery"] for row in rows])
    agreement_fit = fit_power_law(sizes, [row["agreement"] for row in rows])
    table.add_note(
        f"Fitted exponents in n_t0: total {total_fit.exponent:.2f}, discovery "
        f"{discovery_fit.exponent:.2f}, agreement {agreement_fit.exponent:.2f}. "
        "Paper: discovery O(n*e), agreement O~(n sqrt n), overall between n^1.5 "
        "and the n^3 worst case the conclusion wants to improve on."
    )
    table.print()

    # Shape assertions: super-linear but at most cubic total growth, the
    # agreement sub-phase tracks its n^1.5 bound, every committee is
    # honest-supermajority, and initialization is far more expensive than a
    # single polylog maintenance operation (which is the whole point of
    # confining it to the small-n phase).
    assert 1.4 <= total_fit.exponent <= 3.0
    assert 1.3 <= agreement_fit.exponent <= 2.0
    assert all(row["committee_honest"] > 2.0 / 3.0 for row in rows)
    assert all(row["total"] > 0 for row in rows)
    assert rows[0]["mode"] == "message" and rows[-1]["mode"] == "model"
