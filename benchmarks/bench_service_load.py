"""T2 — Live service load: requests/second and tail latency under churn.

The live-service tentpole's acceptance claim is a *measurement*: the asyncio
front-end must sustain hundreds of requests per second of mixed
sample/join/leave traffic with bounded tail latency and zero hard failures.
This benchmark runs the whole stack in one process — a
:class:`~repro.service.frontend.ServiceFrontend` on an ephemeral port and
the open-loop :func:`~repro.service.loadgen.run_load` generator driving a
deterministic Poisson schedule at it — and appends
``service.requests_per_second`` and ``service.p99_latency_ms`` to the
``BENCH_throughput.json`` trajectory at the repository root, alongside the
engine-throughput history.

Single-process on purpose: the server loop and the generator share one
event loop, so the measured rate is a *lower* bound on what separate
processes achieve (the generator steals cycles from the server), and the
figure is still comfortably above the 500 req/s acceptance bar.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_service_load.py [--rate R] [--duration S]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import pytest

from repro.service import LiveEngineSession, ServiceFrontend, live_scenario, run_load
from repro.workloads.arrivals import PoissonArrivals

from bench_engine_throughput import RESULT_PATH, save_result
from common import run_once

RATE = 800.0
DURATION = 5.0
MIX = {"sample": 0.8, "join": 0.1, "leave": 0.1}
MAX_SIZE = 4096
INITIAL = 300
SEED = 47

#: The issue's acceptance bar for sustained mixed load.
ACCEPTANCE_RATE = 500.0


def run_experiment(rate: float = RATE, duration: float = DURATION):
    arrivals = PoissonArrivals(
        rate=rate, duration=duration, mix=MIX, seed=SEED + 1
    ).schedule()

    async def serve_and_drive():
        session = LiveEngineSession(
            live_scenario(seed=SEED, initial_size=INITIAL, max_size=MAX_SIZE)
        )
        frontend = ServiceFrontend(session, port=0)
        await frontend.start()
        try:
            report = await run_load(
                "127.0.0.1",
                frontend.port,
                arrivals,
                offered_rate=rate,
                connections=4,
            )
        finally:
            await frontend.stop()
        return session, frontend, report

    session, frontend, report = asyncio.run(serve_and_drive())

    latencies = [
        stats.latency for stats in report.per_operation.values() if stats.latency.count
    ]
    # Merge the per-operation sketches for the headline tail figure: push
    # each sketch's retained (evenly spaced) sample into one combined view.
    from repro.analysis.statistics import QuantileSketch

    combined = QuantileSketch()
    for sketch in latencies:
        for value in sketch.series:
            combined.push(value)

    result = {
        "benchmark": "service_load",
        "offered_rate": report.offered_rate,
        "duration_seconds": report.duration,
        "sent": report.sent,
        "succeeded": report.succeeded,
        "overloaded": report.overloaded,
        "failed": report.failed,
        "missing": report.missing,
        "service.requests_per_second": report.achieved_rate,
        "service.p99_latency_ms": combined.quantile(0.99),
        "service.p50_latency_ms": combined.quantile(0.50),
        "operations": {
            name: stats.as_dict()
            for name, stats in sorted(report.per_operation.items())
        },
        "engine_events_applied": session.events_applied,
        "connections_served": frontend.connections_served,
        "queue_rejected": frontend.queue.rejected,
        "acceptance_rate": ACCEPTANCE_RATE,
        "max_size": MAX_SIZE,
        "initial_size": INITIAL,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return result


@pytest.mark.experiment("T2")
def test_service_load(benchmark):
    result = run_once(benchmark, lambda: run_experiment())
    print(
        f"T2 service load: {result['sent']} requests offered at "
        f"{result['offered_rate']:.0f} req/s -> "
        f"{result['service.requests_per_second']:.0f} req/s served, "
        f"p50 {result['service.p50_latency_ms']:.2f} ms, "
        f"p99 {result['service.p99_latency_ms']:.2f} ms, "
        f"{result['overloaded']} overloaded, {result['failed']} failed, "
        f"{result['engine_events_applied']} churn events applied"
    )
    save_result(result)

    assert result["failed"] == 0
    assert result["missing"] == 0
    assert result["engine_events_applied"] > 0
    # The issue's sustained-load acceptance bar (in-process, so conservative).
    assert result["service.requests_per_second"] >= ACCEPTANCE_RATE
    assert result["service.p99_latency_ms"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="live service load benchmark")
    parser.add_argument("--rate", type=float, default=RATE)
    parser.add_argument("--duration", type=float, default=DURATION)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    args = parser.parse_args()
    outcome = run_experiment(rate=args.rate, duration=args.duration)
    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
