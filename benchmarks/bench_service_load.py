"""T2 — Live service load: requests/second and tail latency under churn.

The live-service tentpole's acceptance claim is a *measurement*: the asyncio
front-end must sustain hundreds of requests per second of mixed
sample/join/leave traffic with bounded tail latency and zero hard failures.
This benchmark runs the whole stack in one process — a
:class:`~repro.service.frontend.ServiceFrontend` on an ephemeral port and
the open-loop :func:`~repro.service.loadgen.run_load` generator driving a
deterministic Poisson schedule at it — and appends
``service.requests_per_second`` and ``service.p99_latency_ms`` to the
``BENCH_throughput.json`` trajectory at the repository root, alongside the
engine-throughput history.

The sharded arm (``service_load_sharded``) measures the multi-core backend
(``repro serve --shards W``): both backends are driven to *saturation* (an
offered rate far above what either can serve) to expose their peak
``requests_per_second``, and at the standard rate for the tail-latency
comparison.  The speedup assertion only fires on machines with enough cores
to actually host the worker processes — a 1-CPU runner time-slices workers
against the frontend and the generator, so its record is annotated
``oversubscribed`` instead (the same honesty rule as
``bench_sharded_engine``).

Single-process on purpose: the server loop and the generator share one
event loop, so the measured rate is a *lower* bound on what separate
processes achieve (the generator steals cycles from the server), and the
figure is still comfortably above the 500 req/s acceptance bar.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_service_load.py [--rate R] [--duration S]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time

import pytest

from repro.service import (
    LiveEngineSession,
    ServiceFrontend,
    ShardedLiveSession,
    live_scenario,
    run_load,
    sharded_live_scenario,
)
from repro.workloads.arrivals import PoissonArrivals

from bench_engine_throughput import RESULT_PATH, save_result
from common import run_once

RATE = 800.0
DURATION = 5.0
MIX = {"sample": 0.8, "join": 0.1, "leave": 0.1}
MAX_SIZE = 4096
INITIAL = 300
SEED = 47

#: The issue's acceptance bar for sustained mixed load.
ACCEPTANCE_RATE = 500.0

#: Worker processes of the sharded arm and its speedup bar at that count.
SHARD_WORKERS = 4
SHARDED_SPEEDUP_BAR = 2.5

#: Offered rate that saturates either backend: peak-throughput probe.
SATURATION_RATE = 20000.0
SATURATION_DURATION = 3.0


def _drive(make_session, rate: float, duration: float, connections: int = 4):
    """Serve one fresh session and drive a Poisson schedule at it."""
    arrivals = PoissonArrivals(
        rate=rate, duration=duration, mix=MIX, seed=SEED + 1
    ).schedule()

    async def serve_and_drive():
        session = make_session()
        frontend = ServiceFrontend(session, port=0)
        await frontend.start()
        try:
            report = await run_load(
                "127.0.0.1",
                frontend.port,
                arrivals,
                offered_rate=rate,
                connections=connections,
            )
        finally:
            await frontend.stop()
        return session, frontend, report

    return asyncio.run(serve_and_drive())


def _combined_quantiles(report):
    """Merge the per-operation latency sketches into one headline view.

    Pushes each sketch's retained (evenly spaced) sample into one combined
    sketch; quantiles of the merge are the cross-operation tail figures.
    """
    from repro.analysis.statistics import QuantileSketch

    combined = QuantileSketch()
    for stats in report.per_operation.values():
        for value in stats.latency.series:
            combined.push(value)
    return combined


def run_experiment(rate: float = RATE, duration: float = DURATION):
    session, frontend, report = _drive(
        lambda: LiveEngineSession(
            live_scenario(seed=SEED, initial_size=INITIAL, max_size=MAX_SIZE)
        ),
        rate,
        duration,
    )
    combined = _combined_quantiles(report)

    result = {
        "benchmark": "service_load",
        "offered_rate": report.offered_rate,
        "duration_seconds": report.duration,
        "sent": report.sent,
        "succeeded": report.succeeded,
        "overloaded": report.overloaded,
        "failed": report.failed,
        "missing": report.missing,
        "service.requests_per_second": report.achieved_rate,
        "service.p99_latency_ms": combined.quantile(0.99),
        "service.p50_latency_ms": combined.quantile(0.50),
        "operations": {
            name: stats.as_dict()
            for name, stats in sorted(report.per_operation.items())
        },
        "engine_events_applied": session.events_applied,
        "connections_served": frontend.connections_served,
        "queue_rejected": frontend.queue.rejected,
        "acceptance_rate": ACCEPTANCE_RATE,
        "max_size": MAX_SIZE,
        "initial_size": INITIAL,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return result


def run_sharded_experiment(
    rate: float = RATE,
    duration: float = DURATION,
    workers: int = SHARD_WORKERS,
):
    """The sharded-backend measurement: peak req/s speedup + tail latency.

    Four runs: each backend once at the saturating rate (peak throughput —
    the speedup numerator/denominator) and the sharded backend once at the
    standard rate (the apples-to-apples p99 against the classic baseline's
    figure from :func:`run_experiment`).
    """

    def classic():
        return LiveEngineSession(
            live_scenario(seed=SEED, initial_size=INITIAL, max_size=MAX_SIZE)
        )

    def sharded():
        return ShardedLiveSession(
            sharded_live_scenario(seed=SEED, initial_size=INITIAL, max_size=MAX_SIZE),
            workers=workers,
        )

    _, _, classic_sat = _drive(classic, SATURATION_RATE, SATURATION_DURATION)
    _, _, sharded_sat = _drive(sharded, SATURATION_RATE, SATURATION_DURATION)
    _, _, classic_std = _drive(classic, rate, duration)
    session, frontend, sharded_std = _drive(sharded, rate, duration)

    cpu_count = os.cpu_count() or 1
    # The in-process stack needs the frontend/generator loop *plus* the
    # worker processes; fewer cores than that means the measurement is
    # time-slicing, not scaling — record it, don't assert on it.
    oversubscribed = cpu_count < workers + 1
    speedup = (
        sharded_sat.achieved_rate / classic_sat.achieved_rate
        if classic_sat.achieved_rate
        else 0.0
    )

    result = {
        "benchmark": "service_load_sharded",
        "shards": session.shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "oversubscribed": oversubscribed,
        "offered_rate": rate,
        "saturation_rate": SATURATION_RATE,
        "service.sharded_requests_per_second": sharded_sat.achieved_rate,
        "service.sharded_p99_latency_ms": _combined_quantiles(sharded_std).quantile(0.99),
        "service.sharded_p50_latency_ms": _combined_quantiles(sharded_std).quantile(0.50),
        "classic_saturated_requests_per_second": classic_sat.achieved_rate,
        "classic_p99_latency_ms": _combined_quantiles(classic_std).quantile(0.99),
        "speedup_vs_classic": speedup,
        "speedup_bar": SHARDED_SPEEDUP_BAR,
        "failed": sharded_sat.failed + sharded_std.failed,
        "missing": sharded_sat.missing + sharded_std.missing,
        "std_failed": classic_std.failed + classic_sat.failed,
        "engine_events_applied": session.events_applied,
        "connections_served": frontend.connections_served,
        "acceptance_rate": ACCEPTANCE_RATE,
        "max_size": MAX_SIZE,
        "initial_size": INITIAL,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return result


def check_sharded_result(result) -> None:
    """The sharded arm's acceptance assertions (shared by pytest and CI)."""
    assert result["failed"] == 0 and result["missing"] == 0, result
    assert result["engine_events_applied"] > 0
    assert result["service.sharded_requests_per_second"] >= ACCEPTANCE_RATE
    assert result["service.sharded_p99_latency_ms"] > 0
    if not result["oversubscribed"]:
        # Multi-core runner: the whole point of the sharded backend.
        assert result["speedup_vs_classic"] >= SHARDED_SPEEDUP_BAR, result
        # Tail no worse than the classic baseline (25% measurement slack).
        assert (
            result["service.sharded_p99_latency_ms"]
            <= result["classic_p99_latency_ms"] * 1.25
        ), result


@pytest.mark.experiment("T2")
def test_service_load(benchmark):
    result = run_once(benchmark, lambda: run_experiment())
    print(
        f"T2 service load: {result['sent']} requests offered at "
        f"{result['offered_rate']:.0f} req/s -> "
        f"{result['service.requests_per_second']:.0f} req/s served, "
        f"p50 {result['service.p50_latency_ms']:.2f} ms, "
        f"p99 {result['service.p99_latency_ms']:.2f} ms, "
        f"{result['overloaded']} overloaded, {result['failed']} failed, "
        f"{result['engine_events_applied']} churn events applied"
    )
    save_result(result)

    assert result["failed"] == 0
    assert result["missing"] == 0
    assert result["engine_events_applied"] > 0
    # The issue's sustained-load acceptance bar (in-process, so conservative).
    assert result["service.requests_per_second"] >= ACCEPTANCE_RATE
    assert result["service.p99_latency_ms"] > 0


@pytest.mark.experiment("T2")
def test_service_load_sharded(benchmark):
    result = run_once(benchmark, lambda: run_sharded_experiment())
    print(
        f"T2 sharded service load ({result['workers']} workers, "
        f"{result['cpu_count']} cpus"
        f"{', oversubscribed' if result['oversubscribed'] else ''}): "
        f"{result['service.sharded_requests_per_second']:.0f} req/s at "
        f"saturation vs classic "
        f"{result['classic_saturated_requests_per_second']:.0f} req/s "
        f"({result['speedup_vs_classic']:.2f}x), p99 "
        f"{result['service.sharded_p99_latency_ms']:.2f} ms vs classic "
        f"{result['classic_p99_latency_ms']:.2f} ms"
    )
    save_result(result)
    check_sharded_result(result)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="live service load benchmark")
    parser.add_argument("--rate", type=float, default=RATE)
    parser.add_argument("--duration", type=float, default=DURATION)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    parser.add_argument(
        "--workers", type=int, default=SHARD_WORKERS,
        help="worker processes of the sharded arm",
    )
    parser.add_argument(
        "--skip-sharded", action="store_true",
        help="only run the classic single-engine measurement",
    )
    args = parser.parse_args()
    outcome = run_experiment(rate=args.rate, duration=args.duration)
    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    if not args.skip_sharded:
        sharded_outcome = run_sharded_experiment(
            rate=args.rate, duration=args.duration, workers=args.workers
        )
        save_result(sharded_outcome, args.out)
        print(json.dumps(sharded_outcome, indent=2, sort_keys=True))
        check_sharded_result(sharded_outcome)
