"""A1 (ablation) — how much of the exchange machinery is actually needed?

The Leave operation is the most expensive part of NOW because, after the
departing node's cluster exchanges all of its nodes, *every cluster that
traded a node with it* exchanges all of its nodes too — the proof of
Theorem 3 needs this cascade so that the partner clusters' compositions stay
uniform.  This ablation quantifies what the cascade buys and what it costs:

* **full**      — the paper's protocol (cascading exchanges on),
* **no-cascade**— only the departing node's cluster re-exchanges,
* **no-shuffle**— no exchange at all (the E7 baseline, included for scale).

under the same adversarial workload (join–leave attack plus background
churn).  The table reports safety (worst corruption, exceedance rate of 1/3)
and cost (messages per leave) for each variant, i.e. the safety-per-message
trade-off of the design choice.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.adversary import JoinLeaveAttack
from repro.analysis import ExperimentTable
from repro.scenarios import CorruptionTrajectoryProbe, CostLedgerProbe
from repro.workloads import MixedDriver, UniformChurn

from common import bootstrap_engine, fresh_rng, run_once, run_steps

MAX_SIZE = 4096
INITIAL = 280
TAU = 0.2
STEPS = 220


def drive_variant(engine, seed: int):
    target = engine.state.clusters.cluster_ids()[0]
    attack = JoinLeaveAttack(fresh_rng(seed), target_cluster=target)
    churn = UniformChurn(fresh_rng(seed + 1), byzantine_join_fraction=TAU)
    driver = MixedDriver([(attack, 0.5), (churn, 0.5)], fresh_rng(seed + 2))

    corruption = CorruptionTrajectoryProbe()
    costs = CostLedgerProbe()
    run_steps(engine, driver, STEPS, probes=[corruption, costs], name="ablation-shuffle")
    return corruption.summary(), costs.mean_messages("leave")


def run_experiment():
    variants = []

    full = bootstrap_engine(
        MAX_SIZE, INITIAL, tau=TAU, seed=81,
        config=EngineConfig(cascade_exchanges=True),
    )
    variants.append(("full exchange + cascade", *drive_variant(full, seed=810)))

    no_cascade = bootstrap_engine(
        MAX_SIZE, INITIAL, tau=TAU, seed=81,
        config=EngineConfig(cascade_exchanges=False),
    )
    variants.append(("exchange, no cascade", *drive_variant(no_cascade, seed=810)))

    no_shuffle = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=81, engine="no_shuffle")
    variants.append(("no shuffling at all", *drive_variant(no_shuffle, seed=810)))
    return variants


@pytest.mark.experiment("A1")
def test_ablation_shuffling(benchmark):
    variants = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"A1 ablation - exchange cascade under a targeted attack (tau={TAU}, {STEPS} steps)",
        headers=[
            "variant",
            "mean worst corruption",
            "max worst corruption",
            "fraction of steps >= 1/3",
            "mean messages per leave",
        ],
    )
    for label, summary, leave_cost in variants:
        table.add_row(
            label,
            summary.mean,
            summary.maximum,
            summary.fraction_above_threshold,
            leave_cost,
        )
    table.add_note(
        "The cascade is the expensive part of Leave (paper: needed so partner clusters' "
        "compositions stay uniform); dropping it saves roughly a log-factor of messages "
        "and costs a measurable amount of safety margin, while dropping shuffling "
        "entirely loses the guarantee outright."
    )
    table.print()

    by_label = {label: (summary, cost) for label, summary, cost in variants}
    full_summary, full_cost = by_label["full exchange + cascade"]
    lean_summary, lean_cost = by_label["exchange, no cascade"]
    none_summary, _ = by_label["no shuffling at all"]
    # Cost ordering: cascade is the most expensive, no-shuffle pays nothing.
    assert full_cost > lean_cost > 0
    # Safety ordering: both exchanging variants keep the worst cluster far below
    # the no-shuffle variant, which gets captured outright.
    assert none_summary.maximum > 0.5
    assert full_summary.maximum < none_summary.maximum
    assert lean_summary.maximum < none_summary.maximum
    # The full protocol's typical corruption is no worse than the ablated one.
    assert full_summary.mean <= lean_summary.mean + 0.05
