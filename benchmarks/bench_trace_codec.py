"""T2 — Trace codec throughput: bytes/event and record+replay rates.

This benchmark maintains the observation-pipeline performance trajectory:
it records one size-stable T1-style churn scenario three ways —

* ``jsonl-inline``     — the pre-streaming baseline: JSONL trace flushed
  every frame, trajectory probes running inline per event (the observation
  path as it was before the ObservationBus / binary codec),
* ``jsonl-buffered``   — JSONL with batched writes and buffered probes,
* ``binary-buffered``  — the struct-packed binary codec with batched writes
  and buffered probes,

then replays and decodes each trace, and appends the measurements to
``BENCH_throughput.json`` at the repository root (the append-only
trajectory file) under ``"trace_codec"``.  Every configuration attaches a
:class:`~repro.trace.TraceProbe` plus two trajectory probes (corruption +
size), so the recorded events/s is the *end-to-end observed* rate the
acceptance gates track, not a bare-engine rate.

Checked invariants:

* all three traces decode to identical frame sequences and replay with
  zero divergence,
* the binary trace is at least 4x smaller than the JSONL trace,
* binary decode is not slower than JSONL decode.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_trace_codec.py [--steps N]

The acceptance measurement for the streaming-pipeline PR was produced with
``--steps 100000`` (a >=10^5-event horizon); the default is CI-sized.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import pytest

from repro.scenarios import CorruptionTrajectoryProbe, ObservationBus, SizeTrajectoryProbe
from repro.trace import TraceProbe, TraceReader, replay_trace

from common import run_once, scenario_for

MAX_SIZE = 4096
INITIAL = 300
TAU = 0.15
STEPS = 3000
SEED = 29

#: The three observation-path configurations being compared.
CONFIGS = (
    # label, trace format, flush_every, buffered probes, probe_buffer
    ("jsonl-inline", "jsonl", 1, False, 1),
    ("jsonl-buffered", "jsonl", 256, True, 64),
    ("binary-buffered", "binary", 256, True, 64),
)

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_throughput.json"
)


def record_one(path: str, steps: int, trace_format: str, flush_every: int,
               buffered: bool, probe_buffer: int):
    """Record the benchmark scenario once with the given observation config."""
    scenario = scenario_for(MAX_SIZE, INITIAL, tau=TAU, seed=SEED, name="codec", steps=steps)
    engine = scenario.build_engine()
    probes = [
        CorruptionTrajectoryProbe(inline=not buffered),
        SizeTrajectoryProbe(inline=not buffered),
        TraceProbe(path, index_every=200, scenario=scenario,
                   trace_format=trace_format, flush_every=flush_every),
    ]
    runner = scenario.build_runner(probes=probes, engine=engine, probe_buffer=probe_buffer)
    started = time.perf_counter()
    result = runner.run(steps)
    elapsed = time.perf_counter() - started
    probes[2].finalize(engine)
    return result, elapsed


def observation_micro(out_dir: str, events: int = 20000):
    """Time the observation path alone: publish -> probes -> trace writer.

    End-to-end events/s is dominated by ``apply_event`` (milliseconds per
    event at benchmark scale), which drowns the observation pipeline's
    microseconds in run-to-run noise.  This measurement replays a captured
    stream of real per-step reports through the bus + probes + trace writer
    with the engine taken out of the loop, so the inline/per-frame-flush
    baseline and the buffered pipeline can be compared directly.
    """
    scenario = scenario_for(
        MAX_SIZE, INITIAL, tau=TAU, seed=SEED, name="codec-micro",
        steps=400, keep_reports=True,
    )
    engine = scenario.build_engine()
    runner = scenario.build_runner(engine=engine)
    reports = runner.run(400).reports

    rates = {}
    for label, trace_format, flush_every, buffered, probe_buffer in CONFIGS:
        path = os.path.join(out_dir, f"bench-codec-micro-{label}.trace")
        probes = [
            CorruptionTrajectoryProbe(inline=not buffered),
            SizeTrajectoryProbe(inline=not buffered),
            # index_every past the horizon: no O(n) state hashing inside the
            # timed loop, the per-event codec cost is what is being measured.
            TraceProbe(path, index_every=10**9, scenario=scenario,
                       trace_format=trace_format, flush_every=flush_every),
        ]
        bus = ObservationBus(engine, probes, buffer_size=probe_buffer)
        bus.on_start()
        started = time.perf_counter()
        for index in range(events):
            bus.publish(reports[index % len(reports)], index + 1)
        bus.flush()
        elapsed = time.perf_counter() - started
        probes[2].finalize(engine)
        os.unlink(path)
        rates[label] = events / elapsed if elapsed > 0 else 0.0
    return rates


def run_experiment(steps: int = STEPS, out_dir: str = "/tmp"):
    runs = {}
    frame_sets = []
    for label, trace_format, flush_every, buffered, probe_buffer in CONFIGS:
        path = os.path.join(out_dir, f"bench-codec-{label}.trace")
        result, record_elapsed = record_one(
            path, steps, trace_format, flush_every, buffered, probe_buffer
        )
        size = os.path.getsize(path)

        # Best of three decode passes: the gated decode-speed ratio must not
        # flake on one unlucky scheduling of a sub-second timing.
        decode_elapsed = float("inf")
        for _ in range(3):
            decode_started = time.perf_counter()
            reader = TraceReader(path)
            decode_elapsed = min(decode_elapsed, time.perf_counter() - decode_started)
        frame_sets.append(reader.frames)

        replay_started = time.perf_counter()
        replay_report = replay_trace(reader)
        replay_elapsed = time.perf_counter() - replay_started

        runs[label] = {
            "trace_format": trace_format,
            "flush_every": flush_every,
            "buffered_probes": buffered,
            "probe_buffer": probe_buffer,
            "events": result.events,
            "bytes": size,
            "bytes_per_event": size / max(1, result.events),
            "record_elapsed_seconds": record_elapsed,
            "record_events_per_second": result.events / record_elapsed if record_elapsed > 0 else 0.0,
            "decode_elapsed_seconds": decode_elapsed,
            "decode_frames_per_second": len(reader.frames) / decode_elapsed if decode_elapsed > 0 else 0.0,
            "replay_ok": replay_report.ok,
            "replay_elapsed_seconds": replay_elapsed,
            "replay_events_per_second": (
                replay_report.events_applied / replay_elapsed if replay_elapsed > 0 else 0.0
            ),
        }
        os.unlink(path)

    baseline = runs["jsonl-inline"]
    binary = runs["binary-buffered"]
    buffered = runs["jsonl-buffered"]
    micro = observation_micro(out_dir)
    return {
        "trace_codec": runs,
        "observation_pipeline_events_per_second": micro,
        "observation_pipeline_speedup_vs_inline": {
            label: rate / micro["jsonl-inline"] for label, rate in micro.items()
        },
        "steps": steps,
        "max_size": MAX_SIZE,
        "tau": TAU,
        "frames_identical_across_formats": all(
            frames == frame_sets[0] for frames in frame_sets[1:]
        ),
        "binary_size_ratio_vs_jsonl": baseline["bytes"] / binary["bytes"],
        "buffered_record_speedup_vs_inline": (
            buffered["record_events_per_second"] / baseline["record_events_per_second"]
        ),
        "binary_record_speedup_vs_inline": (
            binary["record_events_per_second"] / baseline["record_events_per_second"]
        ),
        "binary_decode_speedup_vs_jsonl": (
            binary["decode_frames_per_second"] / baseline["decode_frames_per_second"]
        ),
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


@pytest.mark.experiment("T2")
def test_trace_codec_throughput(benchmark, tmp_path):
    result = run_once(benchmark, lambda: run_experiment(steps=STEPS, out_dir=str(tmp_path)))
    runs = result["trace_codec"]
    print(
        "T2 trace codec: "
        f"jsonl {runs['jsonl-inline']['bytes_per_event']:.0f} B/ev, "
        f"binary {runs['binary-buffered']['bytes_per_event']:.1f} B/ev "
        f"({result['binary_size_ratio_vs_jsonl']:.1f}x smaller); "
        f"record {runs['jsonl-inline']['record_events_per_second']:.0f} -> "
        f"{runs['binary-buffered']['record_events_per_second']:.0f} ev/s; "
        f"decode {result['binary_decode_speedup_vs_jsonl']:.1f}x faster; "
        f"observation path alone "
        f"{result['observation_pipeline_speedup_vs_inline']['binary-buffered']:.1f}x "
        "the inline/per-frame-flush baseline"
    )
    from bench_engine_throughput import save_result

    save_result(result)

    # Every configuration replays with zero divergence and decodes to the
    # same frames — the codec never trades correctness for size.
    assert result["frames_identical_across_formats"]
    for label, run in runs.items():
        assert run["replay_ok"], label
        assert run["events"] == STEPS
    # The headline acceptance: binary traces are >= 4x smaller than JSONL.
    assert result["binary_size_ratio_vs_jsonl"] >= 4.0
    # Binary decode must not be slower than JSONL decode.
    assert result["binary_decode_speedup_vs_jsonl"] >= 1.0
    # The buffered binary pipeline beats the inline/per-frame-flush baseline
    # on the isolated observation path (measured ~1.5x; the jsonl-buffered
    # configuration is recorded but not gated — same serialiser as the
    # baseline, so its margin is within CI noise).
    assert result["observation_pipeline_speedup_vs_inline"]["binary-buffered"] > 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="trace codec benchmark")
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    parser.add_argument("--tmp-dir", type=str, default="/tmp")
    args = parser.parse_args()
    outcome = run_experiment(steps=args.steps, out_dir=args.tmp_dir)
    from bench_engine_throughput import save_result

    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
