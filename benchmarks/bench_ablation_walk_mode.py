"""A3 (ablation) — walk modes: simulated biased CTRW vs the stationary-law oracle.

The design notes in docs/ARCHITECTURE.md document the one simulation shortcut the long-churn experiments
take: ``randCl`` can either simulate the biased CTRW hop by hop
(``WalkMode.SIMULATED``) or draw the cluster directly from the walk's target
distribution ``|C|/n`` while charging the expected walking cost
(``WalkMode.ORACLE``).  E10 already shows the two endpoint distributions are
statistically indistinguishable; this ablation closes the loop at the *system*
level.  It runs the same churn workload under both modes — as one multi-seed
:class:`~repro.experiments.sweep.SweepSpec` whose grid axis is the nested
``engine_options.walk_mode`` field, fanned out across worker processes — and
compares

* the corruption trajectories (they must agree statistically — the protocol's
  safety cannot depend on which mode produced the samples), and
* the charged communication costs (the oracle's expected-cost model must
  track the simulated walk's measured cost),

with the simulated mode now running on the cached-transition-table walk fast
path (``run_buffered`` segments over the overlay's neighbour tables).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable
from repro.experiments import SweepSpec, run_sweep

from common import run_once

MAX_SIZE = 2048
INITIAL = 200
TAU = 0.15
STEPS = 150
SEEDS = [970, 971]


def build_spec() -> SweepSpec:
    return SweepSpec(
        name="ablation-walk-mode",
        scenario=dict(
            name="walk-mode",
            max_size=MAX_SIZE,
            initial_size=INITIAL,
            tau=TAU,
            steps=STEPS,
            workload={"kind": "uniform"},
        ),
        grid={"engine_options.walk_mode": ["simulated", "oracle"]},
        seeds=SEEDS,
        workers=2,
    )


def run_experiment():
    result = run_sweep(build_spec())
    rows = {}
    for point in result.points():
        records = result.records_for(point)
        aggregates = result.aggregate(point)
        events = aggregates["events"].mean
        rows[point["engine_options.walk_mode"]] = {
            "mode": point["engine_options.walk_mode"],
            "mean_worst": aggregates["mean_worst_fraction"],
            "peak_worst": aggregates["peak_worst_fraction"],
            "mean_operation_cost": aggregates["mean_messages_per_event"],
            "mean_walk_hops": aggregates["walk_hops"].mean / max(1.0, events),
            "events_per_second": aggregates["events_per_second"],
            "invariants": all(record["invariants_ok"] for record in records),
            "completed": all(
                record["stop_reason"] == "steps exhausted" for record in records
            ),
        }
    return rows


@pytest.mark.experiment("A3")
def test_ablation_walk_mode(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=(
            f"A3 ablation - simulated CTRW vs oracle sampling "
            f"({STEPS} churn steps, {len(SEEDS)} seeds per mode)"
        ),
        headers=[
            "walk mode",
            "mean worst corruption (± ci95)",
            "peak worst corruption (± ci95)",
            "mean msgs per operation",
            "mean walk hops per operation",
            "events per second",
        ],
    )
    for key in ("simulated", "oracle"):
        row = rows[key]
        table.add_row(
            row["mode"],
            str(row["mean_worst"]),
            str(row["peak_worst"]),
            row["mean_operation_cost"].mean,
            row["mean_walk_hops"],
            row["events_per_second"].mean,
        )
    table.add_note(
        "The oracle mode draws from the walk's stationary law and charges its expected "
        "cost; it must reproduce the simulated mode's safety behaviour and cost scale "
        "(E10 checks the distributions directly).  Both columns aggregate a multi-seed "
        "sweep run through repro.experiments; the simulated mode rides the cached "
        "transition-table fast path (docs/ARCHITECTURE.md)."
    )
    table.print()

    simulated = rows["simulated"]
    oracle = rows["oracle"]
    # Every run must finish its step budget with the structural invariants
    # intact — a stale transition-table cache would surface here first.
    assert simulated["invariants"] and oracle["invariants"]
    assert simulated["completed"] and oracle["completed"]
    # Safety statistics agree within the Monte-Carlo noise of 150-step runs.
    assert abs(simulated["mean_worst"].mean - oracle["mean_worst"].mean) < 0.06
    assert abs(simulated["peak_worst"].mean - oracle["peak_worst"].mean) < 0.15
    # The charged costs agree within a factor of two (same model, measured vs expected hops).
    ratio = simulated["mean_operation_cost"].mean / max(1.0, oracle["mean_operation_cost"].mean)
    assert 0.5 < ratio < 2.0
    hop_ratio = simulated["mean_walk_hops"] / max(1.0, oracle["mean_walk_hops"])
    assert 0.4 < hop_ratio < 2.5


if __name__ == "__main__":
    for mode, row in run_experiment().items():
        print(mode, row)
