"""A3 (ablation) — walk modes: simulated biased CTRW vs the stationary-law oracle.

The design notes in docs/ARCHITECTURE.md document the one simulation shortcut the long-churn experiments
take: ``randCl`` can either simulate the biased CTRW hop by hop
(``WalkMode.SIMULATED``) or draw the cluster directly from the walk's target
distribution ``|C|/n`` while charging the expected walking cost
(``WalkMode.ORACLE``).  E10 already shows the two endpoint distributions are
statistically indistinguishable; this ablation closes the loop at the *system*
level: it runs the same churn workload under both modes and compares

* the corruption trajectories (they must agree statistically — the protocol's
  safety cannot depend on which mode produced the samples), and
* the charged communication costs (the oracle's expected-cost model must
  track the simulated walk's measured cost),

plus the wall-clock ratio, which is the reason the oracle mode exists.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.analysis import ExperimentTable
from repro.scenarios import CallbackProbe, CorruptionTrajectoryProbe, CostLedgerProbe
from repro.walks.sampler import WalkMode
from repro.workloads import UniformChurn

from common import bootstrap_engine, fresh_rng, run_once, run_steps

MAX_SIZE = 2048
INITIAL = 200
TAU = 0.15
STEPS = 150


def run_mode(mode: WalkMode, seed: int):
    engine = bootstrap_engine(
        MAX_SIZE,
        INITIAL,
        tau=TAU,
        seed=seed,
        config=EngineConfig(walk_mode=mode),
    )
    workload = UniformChurn(fresh_rng(seed + 1), byzantine_join_fraction=TAU)
    corruption = CorruptionTrajectoryProbe()
    costs = CostLedgerProbe()
    hops = CallbackProbe(
        lambda _engine, report, _step: report.operation.walk_hops, name="walk-hops"
    )
    result = run_steps(
        engine, workload, STEPS, probes=[corruption, costs, hops], name=f"walk-{mode.value}"
    )

    return {
        "mode": mode.value,
        "summary": corruption.summary(),
        "mean_operation_cost": costs.mean_messages_overall(),
        "mean_walk_hops": sum(hops.values) / len(hops.values),
        "elapsed_seconds": result.elapsed_seconds,
        "invariants": engine.check_invariants(check_honest_majority=False).holds,
    }


def run_experiment():
    return {
        "simulated": run_mode(WalkMode.SIMULATED, seed=970),
        "oracle": run_mode(WalkMode.ORACLE, seed=970),
    }


@pytest.mark.experiment("A3")
def test_ablation_walk_mode(benchmark):
    result = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"A3 ablation - simulated CTRW vs oracle sampling ({STEPS} churn steps)",
        headers=[
            "walk mode",
            "mean worst corruption",
            "max worst corruption",
            "mean msgs per operation",
            "mean walk hops per operation",
            "wall-clock seconds",
        ],
    )
    for key in ("simulated", "oracle"):
        row = result[key]
        summary = row["summary"]
        table.add_row(
            row["mode"],
            summary.mean,
            summary.maximum,
            row["mean_operation_cost"],
            row["mean_walk_hops"],
            row["elapsed_seconds"],
        )
    table.add_note(
        "The oracle mode draws from the walk's stationary law and charges its expected "
        "cost; it must reproduce the simulated mode's safety behaviour and cost scale "
        "(E10 checks the distributions directly), while running substantially faster - "
        "that speed is why the long-churn benchmarks use it (docs/ARCHITECTURE.md design notes)."
    )
    table.print()

    simulated = result["simulated"]
    oracle = result["oracle"]
    assert simulated["invariants"] and oracle["invariants"]
    # Safety statistics agree within the Monte-Carlo noise of a 150-step run.
    assert abs(simulated["summary"].mean - oracle["summary"].mean) < 0.06
    assert abs(simulated["summary"].maximum - oracle["summary"].maximum) < 0.15
    # The charged costs agree within a factor of two (same model, measured vs expected hops).
    ratio = simulated["mean_operation_cost"] / max(1.0, oracle["mean_operation_cost"])
    assert 0.5 < ratio < 2.0
    hop_ratio = simulated["mean_walk_hops"] / max(1.0, oracle["mean_walk_hops"])
    assert 0.4 < hop_ratio < 2.5
