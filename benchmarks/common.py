"""Shared helpers for the benchmark/experiment harness.

Every benchmark module reproduces one experiment row of EXPERIMENTS.md
(mapped to a figure or quantitative claim of the paper in DESIGN.md §4).
The helpers here keep the scenario construction consistent across benchmarks:
the same parameter scaling, the same seeding discipline, and the same
plain-text table output.

Benchmarks are executed through pytest-benchmark (``pytest benchmarks/
--benchmark-only``); each test wraps its experiment in ``benchmark.pedantic``
with a single round — the interesting output is the experiment table printed
to stdout plus the shape assertions, not a micro-benchmark timing.
"""

from __future__ import annotations

import random
from typing import Optional

from repro import EngineConfig, NowEngine, default_parameters
from repro.params import ProtocolParameters


def scaled_parameters(max_size: int, tau: float = 0.15, k: float = 3.0) -> ProtocolParameters:
    """Protocol parameters used across benchmarks, scaled to ``max_size``."""
    return default_parameters(max_size=max_size, k=k, l=2.0, alpha=0.1, tau=tau, epsilon=0.05)


def bootstrap_engine(
    max_size: int,
    initial_size: int,
    tau: float = 0.15,
    k: float = 3.0,
    seed: int = 1,
    config: Optional[EngineConfig] = None,
) -> NowEngine:
    """A NOW engine bootstrapped with the benchmark parameter scaling."""
    params = scaled_parameters(max_size, tau=tau, k=k)
    return NowEngine.bootstrap(
        params,
        initial_size=initial_size,
        byzantine_fraction=tau,
        seed=seed,
        config=config,
    )


def initial_size_for(max_size: int, k: float = 3.0, clusters: int = 8) -> int:
    """An initial population giving roughly ``clusters`` clusters at ``max_size`` scaling."""
    params = scaled_parameters(max_size, k=k)
    return max(2 * params.target_cluster_size, clusters * params.target_cluster_size)


def sqrt_scaled_size(max_size: int, factor: float = 4.0, k: float = 3.0) -> int:
    """An initial population of ``factor * sqrt(N)`` nodes (the paper's admissible band).

    The cost sweeps (E2, E3, E5) need the *current* size ``n`` to scale with
    the maximum size ``N`` — as the paper's model allows, ``n`` lives in
    ``[sqrt(N), N]`` — otherwise the walk lengths and cluster counts stay
    constant across the sweep and the measured exponents are meaningless.
    """
    params = scaled_parameters(max_size, k=k)
    return max(3 * params.target_cluster_size, int(factor * max_size ** 0.5))


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def fresh_rng(seed: int) -> random.Random:
    """Seeded RNG helper (keeps benchmark modules free of bare random.Random calls)."""
    return random.Random(seed)
