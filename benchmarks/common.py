"""Shared helpers for the benchmark/experiment harness.

Every benchmark module reproduces one experiment row (mapped to a figure or
quantitative claim of the paper — see ``docs/ARCHITECTURE.md`` for the
experiment inventory and the system layering).  The helpers here keep the
scenario construction consistent across benchmarks: the same parameter
scaling, the same seeding discipline, and the same plain-text table output.

Engine construction and every churn loop are routed through the
:mod:`repro.scenarios` subsystem (:class:`~repro.scenarios.scenario.Scenario`
builds the engine, :class:`~repro.scenarios.runner.SimulationRunner` owns the
step loop), so the benchmarks exercise exactly the machinery the CLI and the
examples use.

Benchmarks are executed through pytest-benchmark (``pytest benchmarks/
--benchmark-only``); each test wraps its experiment in ``benchmark.pedantic``
with a single round — the interesting output is the experiment table printed
to stdout plus the shape assertions, not a micro-benchmark timing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence

from repro import EngineConfig, Scenario, SimulationRunner, WalkMode, default_parameters
from repro.params import ProtocolParameters
from repro.scenarios.probes import Probe
from repro.scenarios.runner import RunResult, StopCondition


def scaled_parameters(max_size: int, tau: float = 0.15, k: float = 3.0) -> ProtocolParameters:
    """Protocol parameters used across benchmarks, scaled to ``max_size``."""
    return default_parameters(max_size=max_size, k=k, l=2.0, alpha=0.1, tau=tau, epsilon=0.05)


def scenario_for(
    max_size: int,
    initial_size: int,
    tau: float = 0.15,
    k: float = 3.0,
    seed: int = 1,
    engine: str = "now",
    config: Optional[EngineConfig] = None,
    **fields,
) -> Scenario:
    """A benchmark-scaled :class:`Scenario` (the shared construction path)."""
    if config is not None and engine != "now":
        raise ValueError("EngineConfig only applies to the NOW engine")
    options = {} if config is None else dataclasses.asdict(config)
    if isinstance(options.get("walk_mode"), WalkMode):
        options["walk_mode"] = options["walk_mode"].value  # keep the spec JSON-able
    return Scenario(
        name=fields.pop("name", "benchmark"),
        engine=engine,
        max_size=max_size,
        initial_size=initial_size,
        tau=tau,
        k=k,
        l=2.0,
        alpha=0.1,
        epsilon=0.05,
        seed=seed,
        engine_options=options,
        **fields,
    )


def bootstrap_engine(
    max_size: int,
    initial_size: int,
    tau: float = 0.15,
    k: float = 3.0,
    seed: int = 1,
    config: Optional[EngineConfig] = None,
    engine: str = "now",
):
    """An engine bootstrapped through the scenario subsystem."""
    return scenario_for(
        max_size, initial_size, tau=tau, k=k, seed=seed, engine=engine, config=config
    ).build_engine()


def run_steps(
    engine,
    source,
    steps: int,
    probes: Sequence[Probe] = (),
    stop_conditions: Sequence[StopCondition] = (),
    max_idle_streak: Optional[int] = None,
    name: str = "benchmark",
) -> RunResult:
    """Drive ``engine`` with ``source`` through the shared simulation runner."""
    runner = SimulationRunner(
        engine,
        source,
        probes=probes,
        stop_conditions=stop_conditions,
        max_idle_streak=max_idle_streak,
        name=name,
    )
    return runner.run(steps)


def initial_size_for(max_size: int, k: float = 3.0, clusters: int = 8) -> int:
    """An initial population giving roughly ``clusters`` clusters at ``max_size`` scaling."""
    params = scaled_parameters(max_size, k=k)
    return max(2 * params.target_cluster_size, clusters * params.target_cluster_size)


def sqrt_scaled_size(max_size: int, factor: float = 4.0, k: float = 3.0) -> int:
    """An initial population of ``factor * sqrt(N)`` nodes (the paper's admissible band).

    The cost sweeps (E2, E3, E5) need the *current* size ``n`` to scale with
    the maximum size ``N`` — as the paper's model allows, ``n`` lives in
    ``[sqrt(N), N]`` — otherwise the walk lengths and cluster counts stay
    constant across the sweep and the measured exponents are meaningless.
    """
    params = scaled_parameters(max_size, k=k)
    return max(3 * params.target_cluster_size, int(factor * max_size ** 0.5))


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def fresh_rng(seed: int) -> random.Random:
    """Seeded RNG helper (keeps benchmark modules free of bare random.Random calls)."""
    return random.Random(seed)
