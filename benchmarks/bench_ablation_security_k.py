"""A2 (ablation) — the security parameter k: buying probability with cluster size.

Every guarantee in the paper holds "for k large enough" (clusters of
``k log N`` nodes): Lemma 1's exceedance probability decays as
``exp(-eps^2 tau k log N / 3)``, so doubling ``k`` squares the failure
probability away, at the price of proportionally larger clusters and
(since every primitive is quadratic-ish in the cluster size) a polynomially
larger per-operation cost.

This ablation sweeps ``k`` under identical churn and reports, for each value:
the realised cluster size, the worst-corruption trajectory, the measured
exceedance rate of the one-third line, the finite-size theory prediction
(exact binomial tail), and the mean per-operation message cost — the
probability-vs-cost trade-off a deployment would actually tune.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable
from repro.analysis.bounds import exact_binomial_tail, recommended_k
from repro.scenarios import CorruptionTrajectoryProbe, CostLedgerProbe
from repro.workloads import UniformChurn

from common import bootstrap_engine, fresh_rng, run_once, run_steps, scaled_parameters

MAX_SIZE = 2048
TAU = 0.15
STEPS = 220
K_VALUES = [1.5, 3.0, 6.0]
CLUSTERS = 6


def run_for_k(k: float, seed: int):
    params = scaled_parameters(MAX_SIZE, tau=TAU, k=k)
    initial = CLUSTERS * params.target_cluster_size
    engine = bootstrap_engine(MAX_SIZE, initial, tau=TAU, k=k, seed=seed)
    workload = UniformChurn(fresh_rng(seed + 1), byzantine_join_fraction=TAU)
    corruption = CorruptionTrajectoryProbe()
    costs = CostLedgerProbe()
    run_steps(engine, workload, STEPS, probes=[corruption, costs], name="ablation-k")
    return {
        "k": k,
        "cluster_size": params.target_cluster_size,
        "summary": corruption.summary(),
        "tail": exact_binomial_tail(params.target_cluster_size, TAU, 1.0 / 3.0),
        "mean_operation_cost": costs.mean_messages_overall(),
    }


def run_experiment():
    return [run_for_k(k, seed=950 + index) for index, k in enumerate(K_VALUES)]


@pytest.mark.experiment("A2")
def test_ablation_security_parameter(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"A2 ablation - security parameter k (tau={TAU}, {STEPS} churn steps)",
        headers=[
            "k",
            "cluster size",
            "mean worst",
            "max worst",
            "fraction of steps >= 1/3",
            "binomial tail (theory)",
            "mean msgs per operation",
        ],
    )
    for row in rows:
        summary = row["summary"]
        table.add_row(
            row["k"],
            row["cluster_size"],
            summary.mean,
            summary.maximum,
            summary.fraction_above_threshold,
            row["tail"],
            row["mean_operation_cost"],
        )
    suggested = recommended_k(MAX_SIZE, TAU, 0.5, failure_probability=1e-3, time_steps=STEPS)
    table.add_note(
        "Lemma 1's exceedance probability decays exponentially in k; the binomial-tail "
        f"column is the per-exchange theory value at each cluster size.  recommended_k() "
        f"suggests k ~ {suggested:.1f} for a 1e-3 failure budget over this run."
    )
    table.print()

    # Exceedance rates and theory tails both decrease monotonically in k, while
    # per-operation cost increases.
    exceedance = [row["summary"].fraction_above_threshold for row in rows]
    tails = [row["tail"] for row in rows]
    costs = [row["mean_operation_cost"] for row in rows]
    assert tails[0] > tails[1] > tails[2]
    assert exceedance[2] <= exceedance[0] + 1e-9
    assert exceedance[2] <= 0.02
    assert costs[0] < costs[1] < costs[2]
    # The largest-k run behaves like the theorem: essentially never above 1/3.
    assert rows[2]["summary"].maximum < 0.40
