"""E9 — Remark 2: a 1/r - eps adversary yields clusters at most 1/r corrupted.

Paper claim (Remark 2): "Considering an adversary controlling at most a
fraction 1/r - eps of the nodes for some constant eps > 0 and r >= 2
independent of n, it is possible to strengthen Theorem 3 to obtain that in
all the clusters the adversary controls at most a fraction 1/r of the nodes."

What we run: for r in {3, 4, 6}, set the global adversary fraction to
``1/r - eps`` (eps = 0.10) and run churn with a larger security parameter
(k = 6, clusters of ~66 nodes — Remark 2's statement, like Theorem 3's,
holds "for k large enough" and the required k grows as eps shrinks).  The
table reports the per-time-step worst cluster corruption, the average
per-cluster corruption, and the exceedance rate of the 1/r line, next to the
exact binomial tail at the configured cluster size (the theory's own
prediction of the residual exceedances).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable
from repro.analysis.bounds import exact_binomial_tail
from repro.scenarios import CallbackProbe, CorruptionTrajectoryProbe
from repro.workloads import UniformChurn

from common import bootstrap_engine, fresh_rng, run_once, run_steps, scaled_parameters

MAX_SIZE = 2048
STEPS = 200
EPSILON = 0.10
K_SECURITY = 6.0
CLUSTERS = 6
R_VALUES = [3, 4, 6]


def run_for_r(r: int, seed: int):
    tau = max(0.0, 1.0 / r - EPSILON)
    params = scaled_parameters(MAX_SIZE, tau=tau, k=K_SECURITY)
    initial = CLUSTERS * params.target_cluster_size
    engine = bootstrap_engine(MAX_SIZE, initial, tau=tau, k=K_SECURITY, seed=seed)
    workload = UniformChurn(fresh_rng(seed + 1), byzantine_join_fraction=tau)

    worst_probe = CorruptionTrajectoryProbe(threshold=1.0 / r)
    mean_probe = CallbackProbe(
        lambda _engine, _report, _step: (
            sum(_engine.byzantine_fractions().values()) / _engine.cluster_count
        ),
        name="mean-fraction",
    )
    run_steps(engine, workload, STEPS, probes=[worst_probe, mean_probe], name="remark2")
    mean_series = mean_probe.values
    # The probe's streaming summary keeps exact counts/exceedances however
    # long the horizon; probe.series is a decimated sample past its cap.
    worst_summary = worst_probe.summary()
    return {
        "r": r,
        "tau": tau,
        "cluster_size": params.target_cluster_size,
        "worst": worst_summary,
        "mean_cluster_fraction": sum(mean_series) / len(mean_series),
        "tail": exact_binomial_tail(params.target_cluster_size, tau, 1.0 / r),
    }


def run_experiment():
    return [run_for_r(r, seed=900 + r) for r in R_VALUES]


@pytest.mark.experiment("E9")
def test_remark2_general_fraction(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=(
            f"E9 Remark 2 - adversary at 1/r - {EPSILON} keeps clusters near tau "
            f"({STEPS} steps, k={K_SECURITY:g})"
        ),
        headers=[
            "r",
            "tau = 1/r - eps",
            "cluster size",
            "avg cluster fraction",
            "median worst",
            "mean worst",
            "max worst",
            "steps >= 1/r (fraction)",
            "per-exchange tail (theory)",
        ],
    )
    for row in rows:
        worst = row["worst"]
        table.add_row(
            row["r"],
            row["tau"],
            row["cluster_size"],
            row["mean_cluster_fraction"],
            worst.p50,
            worst.mean,
            worst.maximum,
            worst.fraction_above_threshold,
            row["tail"],
        )
    table.add_note(
        "Paper: Theorem 3 strengthens to 'at most a fraction 1/r in every cluster' when "
        "the adversary holds 1/r - eps globally, for k large enough; at the simulated "
        "cluster sizes the residual exceedances of the worst cluster follow the binomial "
        "tail column, while the average cluster tracks tau."
    )
    table.print()

    for row in rows:
        worst = row["worst"]
        target_line = 1.0 / row["r"]
        # The average cluster sits at tau, clearly below the 1/r line.
        assert row["mean_cluster_fraction"] < target_line - 0.02
        assert abs(row["mean_cluster_fraction"] - row["tau"]) < 0.05
        # The typical (median and mean) worst cluster stays below 1/r.
        assert worst.p50 < target_line
        assert worst.mean < target_line + 0.02
        # Exceedances of 1/r are the small-k residue predicted by the binomial tail.
        allowed = max(0.30, 12 * row["tail"])
        assert worst.fraction_above_threshold <= allowed
