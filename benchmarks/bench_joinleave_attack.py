"""E7 — The join–leave attack: shuffling is what saves the clusters.

Paper claim (Section 3.3): without shuffling, the adversary captures a
cluster by repeatedly re-inserting its nodes until they land there; the
exchange-based shuffling of NOW (and, to a lesser degree, cuckoo-style
limited shuffling) prevents this.

What we run: the same targeted join–leave attack (mixed with background
honest churn) against NOW, the no-shuffle baseline and the cuckoo-rule
baseline, all starting from identical populations.  The table reports, for
each scheme, the peak corruption of the targeted cluster, the number of time
steps until it first reached one third (if ever), and the global worst
cluster corruption at the end.
"""

from __future__ import annotations

import pytest

from repro.adversary import JoinLeaveAttack
from repro.analysis import ExperimentTable
from repro.scenarios import CorruptionTrajectoryProbe
from repro.workloads import MixedDriver, UniformChurn

from common import bootstrap_engine, fresh_rng, run_once, run_steps

MAX_SIZE = 4096
INITIAL = 300
TAU = 0.2
STEPS = 350


def attack_scheme(engine, label: str, seed: int):
    target = engine.state.clusters.cluster_ids()[0]
    attack = JoinLeaveAttack(fresh_rng(seed), target_cluster=target)
    churn = UniformChurn(fresh_rng(seed + 1), byzantine_join_fraction=TAU)
    driver = MixedDriver([(attack, 0.6), (churn, 0.4)], fresh_rng(seed + 2))

    probe = CorruptionTrajectoryProbe(target_cluster=target)
    run_steps(engine, driver, STEPS, probes=[probe], name=label)
    capture_step = probe.first_step_at_threshold
    return {
        "scheme": label,
        "peak_target_fraction": probe.peak,
        "capture_step": capture_step if capture_step is not None else "never",
        "captured": probe.captured,
        "final_worst": engine.worst_cluster_fraction(),
    }


def run_experiment():
    now_engine = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=71)
    no_shuffle = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=71, engine="no_shuffle")
    cuckoo = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=71, engine="cuckoo_rule")
    return [
        attack_scheme(now_engine, "NOW (full exchange)", seed=710),
        attack_scheme(cuckoo, "cuckoo rule (constant eviction)", seed=710),
        attack_scheme(no_shuffle, "no shuffling", seed=710),
    ]


@pytest.mark.experiment("E7")
def test_joinleave_attack_comparison(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"E7 join-leave attack on one target cluster ({STEPS} steps, tau={TAU})",
        headers=[
            "scheme",
            "peak target corruption",
            "first step >= 1/3",
            "captured",
            "final worst cluster corruption",
        ],
    )
    for row in rows:
        table.add_row(
            row["scheme"],
            row["peak_target_fraction"],
            row["capture_step"],
            row["captured"],
            row["final_worst"],
        )
    table.add_note(
        "Paper: the adversary 'chooses a specific cluster and keeps adding and removing "
        "the Byzantine nodes until they fall into that cluster' - shuffling on every join "
        "and leave is what defeats this."
    )
    table.print()

    by_scheme = {row["scheme"]: row for row in rows}
    now_row = by_scheme["NOW (full exchange)"]
    plain_row = by_scheme["no shuffling"]
    # The unshuffled target must be captured; NOW's peak stays strictly lower.
    assert plain_row["captured"]
    assert now_row["peak_target_fraction"] < plain_row["peak_target_fraction"]
    # NOW's typical corruption stays in the vicinity of tau rather than 1/2+.
    assert now_row["final_worst"] < 0.5
