"""E7 — The join–leave attack: shuffling is what saves the clusters.

Paper claim (Section 3.3): without shuffling, the adversary captures a
cluster by repeatedly re-inserting its nodes until they land there; the
exchange-based shuffling of NOW (and, to a lesser degree, cuckoo-style
limited shuffling) prevents this.

What we run: one :class:`~repro.experiments.sweep.SweepSpec` — the targeted
join–leave attack (mixed with background honest churn) as the base scenario,
a grid over the engine (NOW, cuckoo rule, no shuffling) and a multi-seed
list — fanned out across worker processes by the sweep runner.  The table
reports, per scheme, the seed-averaged peak corruption of the targeted
cluster (± 95% CI), how often the target was captured, and the global worst
cluster corruption at the end.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable
from repro.experiments import SweepSpec, run_sweep

from common import run_once

MAX_SIZE = 4096
INITIAL = 300
TAU = 0.2
STEPS = 350
SEEDS = [71, 72]


def build_spec() -> SweepSpec:
    return SweepSpec(
        name="joinleave-attack",
        scenario=dict(
            name="joinleave-attack",
            max_size=MAX_SIZE,
            initial_size=INITIAL,
            tau=TAU,
            steps=STEPS,
            workload={"kind": "uniform"},
            adversary={"kind": "join_leave", "target_cluster": "first"},
            adversary_weight=0.6,
        ),
        grid={"engine": ["now", "cuckoo_rule", "no_shuffle"]},
        seeds=SEEDS,
        workers=2,
        track_target_cluster=True,
    )


SCHEME_LABELS = {
    "now": "NOW (full exchange)",
    "cuckoo_rule": "cuckoo rule (constant eviction)",
    "no_shuffle": "no shuffling",
}


def run_experiment():
    result = run_sweep(build_spec())
    rows = {}
    for point in result.points():
        records = result.records_for(point)
        aggregates = result.aggregate(point)
        rows[point["engine"]] = {
            "scheme": SCHEME_LABELS[point["engine"]],
            "target_peak": aggregates["target_peak_fraction"],
            "captured_runs": sum(1 for record in records if record["target_captured"]),
            "runs": len(records),
            "final_worst": aggregates["final_worst_fraction"],
        }
    return rows


@pytest.mark.experiment("E7")
def test_joinleave_attack_comparison(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=(
            f"E7 join-leave attack on one target cluster "
            f"({STEPS} steps, tau={TAU}, {len(SEEDS)} seeds per scheme)"
        ),
        headers=[
            "scheme",
            "peak target corruption (mean ± ci95)",
            "captured (runs)",
            "final worst cluster corruption (mean)",
        ],
    )
    for engine in ("now", "cuckoo_rule", "no_shuffle"):
        row = rows[engine]
        table.add_row(
            row["scheme"],
            str(row["target_peak"]),
            f"{row['captured_runs']}/{row['runs']}",
            row["final_worst"].mean,
        )
    table.add_note(
        "Paper: the adversary 'chooses a specific cluster and keeps adding and removing "
        "the Byzantine nodes until they fall into that cluster' - shuffling on every join "
        "and leave is what defeats this.  Rows aggregate a multi-seed sweep run through "
        "repro.experiments (one process per worker)."
    )
    table.print()

    now_row = rows["now"]
    plain_row = rows["no_shuffle"]
    # The unshuffled target must be captured in every seed; NOW's peak stays
    # strictly lower on average.
    assert plain_row["captured_runs"] == plain_row["runs"]
    assert now_row["target_peak"].mean < plain_row["target_peak"].mean
    # NOW's typical corruption stays in the vicinity of tau rather than 1/2+.
    assert now_row["final_worst"].mean < 0.5


if __name__ == "__main__":
    for engine, row in run_experiment().items():
        print(engine, row)
