"""Pytest configuration for the benchmark harness.

Makes the ``benchmarks`` directory importable as a package root so the
benchmark modules can share :mod:`common`, and registers a marker used to
annotate the experiment each benchmark reproduces.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): maps a benchmark to an experiment row in docs/ARCHITECTURE.md"
    )
