"""T1b — Walk-kernel throughput: batched CSR hop selection vs the naive loop.

The PR 6 tentpole claim: flattening the overlay into a CSR layout and
advancing all walks of a round together (``repro.walks.kernel.ArrayKernel``)
lifts raw walk throughput from the ~1.2M hops/s the per-hop loop recorded in
PR 5 to well past 10M hops/s on the numpy backend.  This benchmark measures
both engines on identical synthetic overlays at several sizes and *appends*
the rates to ``BENCH_throughput.json`` — same trajectory file, same
append-only discipline as ``bench_engine_throughput.py`` — under
``walk.kernel_hops_per_second``.

Asserted in-test: the numpy kernel beats the naive loop by >= 5x on the same
machine (a relative gate, robust to runner speed).  The pure-python fallback
is measured for the record but only sanity-checked: it exists to keep numpy
optional, not to win races.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_walk_kernel.py [--batch N]
"""

from __future__ import annotations

import argparse
import json
import time

import pytest

from repro.overlay.graph import OverlayGraph
from repro.walks.ctrw import ContinuousRandomWalk
from repro.walks.kernel import ArrayKernel, _np

from bench_engine_throughput import RESULT_PATH, save_result
from common import fresh_rng

#: Overlay sizes (vertex counts) the engines are compared at.
SIZES = (64, 256, 1024)
#: Concurrent walks per batched measurement (an exchange round batches one
#: walk per member; 4096 is the saturated large-round regime).
BATCH = 4096
#: Walks measured per naive data point (the per-hop loop is ~20x slower, so
#: a full BATCH would dominate the benchmark's wall clock without changing
#: the per-hop rate).
NAIVE_BATCH = 256
#: Continuous duration of each measured walk (~300 hops on these overlays).
DURATION = 50.0
#: ``walk.hops_per_second`` recorded by the PR 5 measurement of
#: ``bench_engine_throughput.py`` (naive per-hop loop, simulated mode).  The
#: >= 5x acceptance gate for this PR is checked against the recorded rates
#: in ``BENCH_throughput.json`` measured on one machine; in-test we assert
#: the relative kernel-vs-naive speedup only.
PR5_BASELINE_HOPS_PER_SECOND = 1.2e6
#: Required in-test speedup of the numpy kernel over the naive loop.
REQUIRED_SPEEDUP = 5.0


def build_overlay(vertices: int, seed: int = 5, chords: int = 2) -> OverlayGraph:
    """A connected overlay: ring plus ``chords`` random chords per vertex."""
    rng = fresh_rng(seed)
    graph = OverlayGraph()
    for vertex in range(vertices):
        graph.add_vertex(vertex, weight=1.0 + rng.randrange(5))
    for vertex in range(vertices):
        graph.add_edge(vertex, (vertex + 1) % vertices)
        for _ in range(chords):
            graph.add_edge(vertex, rng.randrange(vertices))
    return graph


def measure_kernel(graph: OverlayGraph, batch: int, backend=None) -> dict:
    """Hops/second of one ``run_ctrw_batch`` over ``batch`` concurrent walks."""
    kernel = ArrayKernel(graph, fresh_rng(11), backend=backend)
    starts = [v % len(graph) for v in range(batch)]
    kernel.run_ctrw_batch(starts[: min(64, batch)], DURATION / 8)  # warm-up
    begin = time.perf_counter()
    results = kernel.run_ctrw_batch(starts, DURATION)
    elapsed = time.perf_counter() - begin
    hops = sum(result[1] for result in results)
    return {
        "backend": kernel.backend,
        "walks": batch,
        "hops": hops,
        "elapsed_seconds": elapsed,
        "hops_per_second": hops / elapsed if elapsed > 0 else 0.0,
    }


def measure_naive(graph: OverlayGraph, batch: int) -> dict:
    """Hops/second of the per-hop ``run_many`` loop on the same overlay."""
    walk = ContinuousRandomWalk(graph, fresh_rng(11))
    starts = [v % len(graph) for v in range(batch)]
    walk.run_many(starts[: min(32, batch)], DURATION / 8)  # warm-up
    begin = time.perf_counter()
    results = walk.run_many(starts, DURATION)
    elapsed = time.perf_counter() - begin
    hops = sum(result.hops for result in results)
    return {
        "backend": "naive",
        "walks": batch,
        "hops": hops,
        "elapsed_seconds": elapsed,
        "hops_per_second": hops / elapsed if elapsed > 0 else 0.0,
    }


def run_experiment(batch: int = BATCH, naive_batch: int = NAIVE_BATCH) -> dict:
    by_size = []
    for size in SIZES:
        graph = build_overlay(size)
        row = {
            "vertices": size,
            "edges": graph.edge_count(),
            "naive": measure_naive(graph, naive_batch),
            "python": measure_kernel(graph, batch, backend="python"),
        }
        if _np is not None:
            row["array"] = measure_kernel(graph, batch, backend="numpy")
        by_size.append(row)

    # Headline rates: the largest overlay, saturated batch.
    largest = by_size[-1]
    fast = largest.get("array") or largest["python"]
    naive_rate = largest["naive"]["hops_per_second"]
    return {
        "kernel_sizes": list(SIZES),
        "kernel_batch": batch,
        "kernel_duration": DURATION,
        "kernel_by_size": by_size,
        "pr5_baseline_hops_per_second": PR5_BASELINE_HOPS_PER_SECOND,
        "walk": {
            "mode": "kernel-ctrw-batch",
            "kernel": "array",
            "backend": fast["backend"],
            "hops": fast["hops"],
            "elapsed_seconds": fast["elapsed_seconds"],
            "hops_per_second": fast["hops_per_second"],
            "kernel_hops_per_second": {
                "naive": naive_rate,
                "python": largest["python"]["hops_per_second"],
                **(
                    {"array": largest["array"]["hops_per_second"]}
                    if "array" in largest
                    else {}
                ),
            },
            "speedup_vs_naive": fast["hops_per_second"] / naive_rate
            if naive_rate > 0
            else 0.0,
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


@pytest.mark.experiment("T1b")
def test_walk_kernel_throughput(benchmark):
    from common import run_once

    result = run_once(benchmark, run_experiment)
    for row in result["kernel_by_size"]:
        fast = row.get("array") or row["python"]
        print(
            f"T1b kernel V={row['vertices']}: naive "
            f"{row['naive']['hops_per_second'] / 1e6:.2f}M hops/s, "
            f"{fast['backend']} kernel {fast['hops_per_second'] / 1e6:.2f}M hops/s "
            f"({fast['hops_per_second'] / row['naive']['hops_per_second']:.1f}x)"
        )
    save_result(result)

    # Every engine actually walked on every overlay size.
    for row in result["kernel_by_size"]:
        assert row["naive"]["hops"] > 0
        assert row["python"]["hops"] > 0
    # The fallback must work; only the numpy backend carries the speed gate.
    if _np is not None:
        assert result["walk"]["backend"] == "numpy"
        assert result["walk"]["speedup_vs_naive"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="walk kernel throughput benchmark")
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--naive-batch", type=int, default=NAIVE_BATCH)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    args = parser.parse_args()
    outcome = run_experiment(batch=args.batch, naive_batch=args.naive_batch)
    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
