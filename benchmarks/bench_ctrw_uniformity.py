"""E10 — CTRW uniformity and Lemma 1: the sampling assumption behind the analysis.

Paper claims (Sections 3.1 and 4): the biased CTRW selects a cluster with
probability ``|C| / n`` (equivalently, nodes uniformly), and the analysis may
treat the walk's output as perfectly distributed because the residual bias
after the chosen mixing time is ``O(n^-c)``.  Lemma 1 then states that a
cluster that has exchanged all its nodes holds at most a ``tau (1 + eps)``
fraction of Byzantine nodes whp.

What we run:

1. **Walk uniformity** — on a live overlay, compare the empirical endpoint
   distribution of the *simulated* biased CTRW against the target ``|C|/n``
   distribution and against the oracle sampler (total-variation distances).
   This is also the experiment justifying the oracle walk mode used by the
   long-churn benchmarks (docs/ARCHITECTURE.md design notes).
2. **Lemma 1** — repeatedly force a full exchange of one cluster and compare
   the post-exchange Byzantine fraction distribution against the binomial
   model ``Bin(|C|, tau)`` (mean and exceedance rate of ``tau (1 + eps)``
   versus the Chernoff/exact tails).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable, chernoff_cluster_tail
from repro.analysis.bounds import exact_binomial_tail
from repro.core.exchange import ExchangeProtocol
from repro.core.randcl import RandCl
from repro.walks.mixing import total_variation_distance
from repro.walks.sampler import WalkMode

from common import bootstrap_engine, run_once

MAX_SIZE = 2048
INITIAL = 220
TAU = 0.15
WALK_SAMPLES = 1200
EXCHANGE_TRIALS = 120
EPSILON = 0.5


def run_walk_uniformity(seed: int):
    engine = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=seed)
    state = engine.state
    randcl_simulated = RandCl(state, walk_mode=WalkMode.SIMULATED)
    randcl_oracle = RandCl(state, walk_mode=WalkMode.ORACLE)
    start = state.clusters.cluster_ids()[0]

    target = {
        cluster_id: len(state.clusters.get(cluster_id)) / state.network_size
        for cluster_id in state.clusters.cluster_ids()
    }
    simulated_counts = {}
    oracle_counts = {}
    hops_total = 0
    for _ in range(WALK_SAMPLES):
        sim = randcl_simulated.select(start)
        ora = randcl_oracle.select(start)
        simulated_counts[sim.cluster_id] = simulated_counts.get(sim.cluster_id, 0) + 1
        oracle_counts[ora.cluster_id] = oracle_counts.get(ora.cluster_id, 0) + 1
        hops_total += sim.hops
    simulated_dist = {key: value / WALK_SAMPLES for key, value in simulated_counts.items()}
    oracle_dist = {key: value / WALK_SAMPLES for key, value in oracle_counts.items()}
    return {
        "tv_simulated_vs_target": total_variation_distance(simulated_dist, target),
        "tv_oracle_vs_target": total_variation_distance(oracle_dist, target),
        "tv_simulated_vs_oracle": total_variation_distance(simulated_dist, oracle_dist),
        "mean_hops": hops_total / WALK_SAMPLES,
        "cluster_count": engine.cluster_count,
    }


def run_lemma1(seed: int):
    engine = bootstrap_engine(MAX_SIZE, INITIAL, tau=TAU, seed=seed)
    state = engine.state
    randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
    exchange = ExchangeProtocol(state, randcl)
    target = state.clusters.cluster_ids()[0]
    cluster_size = len(state.clusters.get(target))

    fractions = []
    exceedances = 0
    threshold = TAU * (1.0 + EPSILON)
    for _ in range(EXCHANGE_TRIALS):
        exchange.exchange_all(target)
        fraction = state.cluster_byzantine_fraction(target)
        fractions.append(fraction)
        if fraction > threshold:
            exceedances += 1
    return {
        "cluster_size": cluster_size,
        "mean_fraction": sum(fractions) / len(fractions),
        "max_fraction": max(fractions),
        "exceedance_rate": exceedances / EXCHANGE_TRIALS,
        "chernoff_bound": chernoff_cluster_tail(cluster_size, TAU, EPSILON),
        "exact_tail": exact_binomial_tail(cluster_size, TAU, threshold),
    }


def run_experiment():
    return {"walks": run_walk_uniformity(seed=1001), "lemma1": run_lemma1(seed=1002)}


@pytest.mark.experiment("E10")
def test_ctrw_uniformity_and_lemma1(benchmark):
    result = run_once(benchmark, run_experiment)
    walks = result["walks"]
    lemma = result["lemma1"]

    walk_table = ExperimentTable(
        title=f"E10a biased CTRW uniformity ({WALK_SAMPLES} walks, {walks['cluster_count']} clusters)",
        headers=[
            "TV(simulated, |C|/n)",
            "TV(oracle, |C|/n)",
            "TV(simulated, oracle)",
            "mean hops per walk",
        ],
    )
    walk_table.add_row(
        walks["tv_simulated_vs_target"],
        walks["tv_oracle_vs_target"],
        walks["tv_simulated_vs_oracle"],
        walks["mean_hops"],
    )
    walk_table.add_note(
        "Paper (Section 4): the walk's endpoint distribution may be treated as the exact "
        "|C|/n distribution; the residual TV distance here is sampling noise "
        f"(~sqrt(#C / samples) = {(walks['cluster_count'] / WALK_SAMPLES) ** 0.5:.3f})."
    )
    walk_table.print()

    lemma_table = ExperimentTable(
        title=f"E10b Lemma 1 - cluster corruption right after a full exchange (tau={TAU})",
        headers=[
            "cluster size",
            "mean fraction",
            "max fraction",
            f"P[fraction > tau(1+{EPSILON})] measured",
            "exact binomial tail",
            "Chernoff bound",
        ],
    )
    lemma_table.add_row(
        lemma["cluster_size"],
        lemma["mean_fraction"],
        lemma["max_fraction"],
        lemma["exceedance_rate"],
        lemma["exact_tail"],
        lemma["chernoff_bound"],
    )
    lemma_table.add_note(
        "Lemma 1: P[fraction > tau(1+eps)] <= exp(-eps^2 tau |C| / 3) after a full "
        "exchange; the measured exceedance rate must sit at or below the exact binomial "
        "tail (up to Monte-Carlo noise), which itself sits below the Chernoff bound."
    )
    lemma_table.print()

    noise_floor = 3.0 * (walks["cluster_count"] / WALK_SAMPLES) ** 0.5
    assert walks["tv_simulated_vs_target"] < noise_floor
    assert walks["tv_simulated_vs_oracle"] < noise_floor
    assert walks["mean_hops"] > 1.0

    assert lemma["mean_fraction"] == pytest.approx(TAU, abs=0.06)
    measurement_noise = 3.0 * (lemma["exact_tail"] / EXCHANGE_TRIALS) ** 0.5 + 0.03
    assert lemma["exceedance_rate"] <= lemma["exact_tail"] + measurement_noise
    assert lemma["exact_tail"] <= lemma["chernoff_bound"] + 1e-9
