"""T1 — Engine throughput: steady-state churn events per second.

This benchmark maintains the performance trajectory of the engine stack: it
drives a size-stable :class:`~repro.workloads.churn.UniformChurn` scenario
through the shared :class:`~repro.scenarios.runner.SimulationRunner` and
*appends* the steady-state event rate to ``BENCH_throughput.json`` at the
repository root — one entry per measurement, oldest first — so successive
PRs can compare like for like and CI can plot the whole history.

Two rates are recorded:

* ``events_per_second`` — the default (oracle walk mode) engine, the figure
  the throughput acceptance gates track across PRs;
* ``walk.hops_per_second`` — a shorter run in ``WalkMode.SIMULATED``, where
  every ``randCl`` walk is simulated hop by hop on the overlay's cached
  transition tables; this is the walk-engine fast path's own throughput.

It also verifies the incremental-accounting contract behind the rate: the
node and cluster registries count every full population sweep
(``full_scan_count``), and a churn event must complete with (far) fewer than
``LEGACY_SCANS_PER_EVENT / 2`` sweeps.  Before the incremental counters, one
event cost at least three full sweeps — ``random_member`` rebuilt the active
list and the per-step snapshot recomputed ``byzantine_fractions`` and
``compromised_clusters`` from scratch — so the assertion pins the >= 2x
reduction in per-event full-population scans.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--steps N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import pytest

from repro import EngineConfig
from repro.scenarios import CallbackProbe, SimulationRunner
from repro.walks.sampler import WalkMode
from repro.workloads import UniformChurn

from common import fresh_rng, run_once, scenario_for

MAX_SIZE = 4096
INITIAL = 300
TAU = 0.15
STEPS = 1200
#: Steps of the (slower) simulated-walk segment measuring walk hops/second.
WALK_STEPS = 300
#: Full population sweeps one churn event cost before incremental accounting:
#: one ``active_nodes`` rebuild in ``random_member`` plus two full
#: ``byzantine_fractions`` / ``compromised_clusters`` recomputations in the
#: per-step snapshot.
LEGACY_SCANS_PER_EVENT = 3.0
#: events/second recorded by the PR 1 measurement of this benchmark.  The
#: walk fast-path PR's >= 3x acceptance gate is checked against the recorded
#: ``speedup_vs_baseline`` in ``BENCH_throughput.json`` (measured on the same
#: machine as the baseline) — it is deliberately *not* asserted in-test,
#: because absolute events/sec depend on the CI runner's speed.
BASELINE_EVENTS_PER_SECOND = 150.9

RESULT_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_throughput.json")


def run_experiment(steps: int = STEPS, walk_steps: int = WALK_STEPS):
    scenario = scenario_for(MAX_SIZE, INITIAL, tau=TAU, seed=29, name="throughput")
    engine = scenario.build_engine()
    workload = UniformChurn(fresh_rng(30), byzantine_join_fraction=TAU)
    runner = SimulationRunner(engine, workload, name="throughput")

    # Warm-up out of the post-initialization transient, then measure.
    runner.run(min(100, steps // 10))
    scans_before = engine.state.nodes.full_scan_count + engine.state.clusters.full_scan_count
    result = runner.run(steps)
    scans_after = engine.state.nodes.full_scan_count + engine.state.clusters.full_scan_count
    scans_per_event = (scans_after - scans_before) / max(1, result.events)

    # Walk-engine throughput: the same scenario in SIMULATED mode, where the
    # biased CTRWs actually hop across the overlay's cached tables.
    walk_scenario = scenario_for(
        MAX_SIZE,
        INITIAL,
        tau=TAU,
        seed=29,
        name="throughput-walks",
        config=EngineConfig(walk_mode=WalkMode.SIMULATED),
    )
    walk_engine = walk_scenario.build_engine()
    walk_workload = UniformChurn(fresh_rng(31), byzantine_join_fraction=TAU)
    hops_probe = CallbackProbe(
        lambda _engine, report, _step: report.operation.walk_hops, name="walk-hops"
    )
    walk_runner = SimulationRunner(
        walk_engine, walk_workload, probes=[hops_probe], name="throughput-walks"
    )
    walk_result = walk_runner.run(walk_steps)
    walk_hops = int(sum(hops_probe.values))

    # The same simulated-walk scenario on the batched CSR kernel (PR 6): the
    # exchange rounds advance all their walks in lockstep through
    # ``repro.walks.kernel.ArrayKernel`` instead of the per-hop loop.
    kernel_scenario = scenario_for(
        MAX_SIZE,
        INITIAL,
        tau=TAU,
        seed=29,
        name="throughput-walks-kernel",
        config=EngineConfig(walk_mode=WalkMode.SIMULATED, walk_kernel="array"),
    )
    kernel_engine = kernel_scenario.build_engine()
    kernel_workload = UniformChurn(fresh_rng(31), byzantine_join_fraction=TAU)
    kernel_probe = CallbackProbe(
        lambda _engine, report, _step: report.operation.walk_hops, name="walk-hops"
    )
    kernel_runner = SimulationRunner(
        kernel_engine, kernel_workload, probes=[kernel_probe], name="throughput-walks-kernel"
    )
    kernel_result = kernel_runner.run(walk_steps)
    kernel_hops = int(sum(kernel_probe.values))

    return {
        "steps": result.steps,
        "events": result.events,
        "elapsed_seconds": result.elapsed_seconds,
        "events_per_second": result.events_per_second,
        "baseline_events_per_second": BASELINE_EVENTS_PER_SECOND,
        "speedup_vs_baseline": result.events_per_second / BASELINE_EVENTS_PER_SECOND,
        "scans_per_event": scans_per_event,
        "legacy_scans_per_event": LEGACY_SCANS_PER_EVENT,
        "final_network_size": result.final_size,
        "final_cluster_count": result.final_cluster_count,
        "max_size": MAX_SIZE,
        "tau": TAU,
        "walk": {
            "mode": "simulated",
            "steps": walk_result.steps,
            "events": walk_result.events,
            "elapsed_seconds": walk_result.elapsed_seconds,
            "events_per_second": walk_result.events_per_second,
            "hops": walk_hops,
            "hops_per_second": walk_hops / walk_result.elapsed_seconds
            if walk_result.elapsed_seconds > 0
            else 0.0,
        },
        "walk_array": {
            "mode": "simulated",
            "kernel": "array",
            "steps": kernel_result.steps,
            "events": kernel_result.events,
            "elapsed_seconds": kernel_result.elapsed_seconds,
            "events_per_second": kernel_result.events_per_second,
            "hops": kernel_hops,
            "hops_per_second": kernel_hops / kernel_result.elapsed_seconds
            if kernel_result.elapsed_seconds > 0
            else 0.0,
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def load_trajectory(path: str = RESULT_PATH):
    """The recorded measurement list (tolerates the old single-dict format)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    if isinstance(recorded, dict):
        return [recorded]
    return list(recorded)


def save_result(result, path: str = RESULT_PATH) -> None:
    """Append ``result`` to the trajectory file (never overwrite history).

    The write goes through a temp file + atomic rename
    (:func:`repro.trace.write_json_atomic`), so a benchmark killed
    mid-write cannot corrupt the recorded trajectory: readers see either
    the old history or the new one, never a truncated JSON document.
    """
    from repro.trace import write_json_atomic

    trajectory = load_trajectory(path)
    trajectory.append(result)
    write_json_atomic(path, trajectory, indent=2)


@pytest.mark.experiment("T1")
def test_engine_throughput(benchmark):
    result = run_once(benchmark, lambda: run_experiment(steps=STEPS))
    print(
        f"T1 throughput: {result['events']} events in {result['elapsed_seconds']:.2f}s "
        f"= {result['events_per_second']:.0f} events/s "
        f"({result['speedup_vs_baseline']:.2f}x the PR 1 baseline); "
        f"{result['scans_per_event']:.3f} full-population scans per event "
        f"(legacy floor {LEGACY_SCANS_PER_EVENT}); "
        f"simulated walks: {result['walk']['hops']} hops "
        f"= {result['walk']['hops_per_second']:.0f} hops/s; "
        f"array kernel: {result['walk_array']['hops']} hops "
        f"= {result['walk_array']['hops_per_second']:.0f} hops/s"
    )
    save_result(result)

    assert result["events"] > 0
    assert result["events_per_second"] > 0
    # Both walk engines must actually walk (and be measured).
    assert result["walk"]["hops"] > 0
    assert result["walk"]["hops_per_second"] > 0
    assert result["walk_array"]["hops"] > 0
    assert result["walk_array"]["hops_per_second"] > 0
    # The original tentpole claim: at least 2x fewer full-population scans per
    # event than the pre-incremental engine (which needed >= 3 per event).
    assert result["scans_per_event"] <= LEGACY_SCANS_PER_EVENT / 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="engine throughput benchmark")
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--walk-steps", type=int, default=WALK_STEPS)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    args = parser.parse_args()
    outcome = run_experiment(steps=args.steps, walk_steps=args.walk_steps)
    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
