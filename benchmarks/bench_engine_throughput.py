"""T1 — Engine throughput: steady-state churn events per second.

This benchmark seeds the performance trajectory of the engine stack: it
drives a size-stable :class:`~repro.workloads.churn.UniformChurn` scenario
through the shared :class:`~repro.scenarios.runner.SimulationRunner` and
records the steady-state event rate into ``BENCH_throughput.json`` at the
repository root, so successive PRs can compare like for like.

It also verifies the incremental-accounting contract behind the rate: the
node and cluster registries count every full population sweep
(``full_scan_count``), and a churn event must complete with (far) fewer than
``LEGACY_SCANS_PER_EVENT / 2`` sweeps.  Before the incremental counters, one
event cost at least three full sweeps — ``random_member`` rebuilt the active
list and the per-step snapshot recomputed ``byzantine_fractions`` and
``compromised_clusters`` from scratch — so the assertion pins the >= 2x
reduction in per-event full-population scans.

Run standalone (CI writes the JSON artifact this way)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--steps N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import pytest

from repro.scenarios import SimulationRunner
from repro.workloads import UniformChurn

from common import fresh_rng, run_once, scenario_for

MAX_SIZE = 4096
INITIAL = 300
TAU = 0.15
STEPS = 1200
#: Full population sweeps one churn event cost before incremental accounting:
#: one ``active_nodes`` rebuild in ``random_member`` plus two full
#: ``byzantine_fractions`` / ``compromised_clusters`` recomputations in the
#: per-step snapshot.
LEGACY_SCANS_PER_EVENT = 3.0

RESULT_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_throughput.json")


def run_experiment(steps: int = STEPS):
    scenario = scenario_for(MAX_SIZE, INITIAL, tau=TAU, seed=29, name="throughput")
    engine = scenario.build_engine()
    workload = UniformChurn(fresh_rng(30), byzantine_join_fraction=TAU)
    runner = SimulationRunner(engine, workload, name="throughput")

    # Warm-up out of the post-initialization transient, then measure.
    runner.run(min(100, steps // 10))
    scans_before = engine.state.nodes.full_scan_count + engine.state.clusters.full_scan_count
    result = runner.run(steps)
    scans_after = engine.state.nodes.full_scan_count + engine.state.clusters.full_scan_count

    scans_per_event = (scans_after - scans_before) / max(1, result.events)
    return {
        "steps": result.steps,
        "events": result.events,
        "elapsed_seconds": result.elapsed_seconds,
        "events_per_second": result.events_per_second,
        "scans_per_event": scans_per_event,
        "legacy_scans_per_event": LEGACY_SCANS_PER_EVENT,
        "final_network_size": result.final_size,
        "final_cluster_count": result.final_cluster_count,
        "max_size": MAX_SIZE,
        "tau": TAU,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def save_result(result, path: str = RESULT_PATH) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.experiment("T1")
def test_engine_throughput(benchmark):
    result = run_once(benchmark, lambda: run_experiment(steps=STEPS))
    print(
        f"T1 throughput: {result['events']} events in {result['elapsed_seconds']:.2f}s "
        f"= {result['events_per_second']:.0f} events/s; "
        f"{result['scans_per_event']:.3f} full-population scans per event "
        f"(legacy floor {LEGACY_SCANS_PER_EVENT})"
    )
    save_result(result)

    assert result["events"] > 0
    assert result["events_per_second"] > 0
    # The tentpole claim: at least 2x fewer full-population scans per event
    # than the pre-incremental engine (which needed >= 3 per event).
    assert result["scans_per_event"] <= LEGACY_SCANS_PER_EVENT / 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="engine throughput benchmark")
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--out", type=str, default=RESULT_PATH)
    args = parser.parse_args()
    outcome = run_experiment(steps=args.steps)
    save_result(outcome, args.out)
    print(json.dumps(outcome, indent=2, sort_keys=True))
