"""E2 — Figure 2: every maintenance operation has polylog(N) complexity.

Paper claim (Figure 2 caption and Section 3.3): Join, Leave, Split and Merge
each cost ``polylog(N)`` messages and ``O(log^4 N)`` rounds.

What we run: for a sweep of maximum sizes ``N``, bootstrap a NOW system,
apply a fixed number of joins and leaves, and record the *measured* message
and round cost per operation type (split/merge costs are captured inside the
join/leave that triggered them plus dedicated scopes).  The table reports the
mean per-operation cost for each ``N`` and the fitted growth exponents: the
power-law exponent in ``N`` should be far below 1 (polylog growth), and the
polylog exponent should be a small constant.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable, fit_polylog, fit_power_law
from repro.analysis.complexity import is_consistent_with_polylog
from repro.scenarios import CostLedgerProbe
from repro.workloads import GrowthWorkload, ShrinkWorkload

from common import bootstrap_engine, fresh_rng, run_once, run_steps, sqrt_scaled_size

SWEEP = [256, 1024, 4096, 16384, 65536]
JOINS_PER_SIZE = 25
LEAVES_PER_SIZE = 25


def run_for_size(max_size: int, seed: int):
    engine = bootstrap_engine(
        max_size, sqrt_scaled_size(max_size), tau=0.1, seed=seed
    )
    # A growth phase of exactly JOINS_PER_SIZE joins (roles corrupted at 10%),
    # then a shrink phase of exactly LEAVES_PER_SIZE leaves, each measured by
    # a fresh cost ledger probe through the shared runner.
    join_probe = CostLedgerProbe()
    growth = GrowthWorkload(
        fresh_rng(seed + 1),
        target_size=engine.network_size + JOINS_PER_SIZE,
        byzantine_join_fraction=0.1,
    )
    run_steps(engine, growth, JOINS_PER_SIZE, probes=[join_probe], name="fig2-joins")
    leave_probe = CostLedgerProbe()
    shrink = ShrinkWorkload(
        fresh_rng(seed + 2), target_size=engine.network_size - LEAVES_PER_SIZE
    )
    run_steps(engine, shrink, LEAVES_PER_SIZE, probes=[leave_probe], name="fig2-leaves")
    return {
        "max_size": max_size,
        "join_messages": join_probe.mean_messages("join"),
        "join_rounds": join_probe.mean_rounds("join"),
        "leave_messages": leave_probe.mean_messages("leave"),
        "leave_rounds": leave_probe.mean_rounds("leave"),
        "cluster_size": engine.parameters.target_cluster_size,
    }


def run_experiment():
    return [run_for_size(size, seed=100 + index) for index, size in enumerate(SWEEP)]


@pytest.mark.experiment("E2")
def test_fig2_operation_costs(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title="E2 Figure 2 - measured per-operation cost vs N",
        headers=[
            "N",
            "cluster size",
            "join msgs",
            "join rounds",
            "leave msgs",
            "leave rounds",
        ],
    )
    for row in rows:
        table.add_row(
            row["max_size"],
            row["cluster_size"],
            row["join_messages"],
            row["join_rounds"],
            row["leave_messages"],
            row["leave_rounds"],
        )

    sizes = [row["max_size"] for row in rows]
    join_power = fit_power_law(sizes, [row["join_messages"] for row in rows])
    leave_power = fit_power_law(sizes, [row["leave_messages"] for row in rows])
    join_polylog = fit_polylog(sizes, [row["join_messages"] for row in rows])
    leave_polylog = fit_polylog(sizes, [row["leave_messages"] for row in rows])
    table.add_note(
        f"join: N-exponent {join_power.exponent:.2f} (polylog exponent "
        f"{join_polylog.exponent:.2f}); leave: N-exponent {leave_power.exponent:.2f} "
        f"(polylog exponent {leave_polylog.exponent:.2f}). Paper: both polylog(N)."
    )
    table.print()

    # Shape assertions: costs grow sub-linearly in N (polylog), leaves are the
    # most expensive operation (cascading exchanges over ~log N partner
    # clusters pushes them towards log^7 N, so their finite-size power-law
    # exponent sits higher than join's but still below linear), and the
    # polylog model explains the curves well.
    assert is_consistent_with_polylog(sizes, [row["join_messages"] for row in rows])
    assert leave_power.exponent < 1.0
    assert leave_polylog.r_squared > 0.97
    assert all(row["leave_messages"] > row["join_messages"] for row in rows)
    round_power = fit_power_law(sizes, [row["leave_rounds"] for row in rows])
    assert round_power.exponent < 1.0
