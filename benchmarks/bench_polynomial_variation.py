"""E6 — Polynomial size variation: dynamic clusters vs a static cluster count.

Paper claim (Sections 1 and 5): previous clustering schemes assume the number
of nodes varies by at most a constant factor; with a static number of
clusters, growing from ``n`` to ``n^2`` blows the per-cluster size up and the
intra-cluster computation degenerates towards the single-committee cost.  NOW
keeps clusters at ``Theta(log N)`` by splitting and merging, so it tolerates
polynomial variation.

What we run: grow a system from roughly ``2 sqrt(N)`` nodes towards a several
times larger size under both NOW and the static-cluster-count baseline (same
initial partition sizing).  The table tracks, at checkpoints of the growth,
the maximum cluster size and the implied quadratic intra-cluster agreement
cost for both schemes.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable
from repro.scenarios import SimulationRunner
from repro.workloads import GrowthWorkload

from common import bootstrap_engine, fresh_rng, run_once

MAX_SIZE = 16384
START = 256          # ~ 2 sqrt(N)
TARGET = 1100        # > 4x growth, still far below N
CHECKPOINTS = [256, 420, 700, 1100]


def run_experiment():
    now_engine = bootstrap_engine(MAX_SIZE, START, tau=0.1, seed=61)
    static = bootstrap_engine(MAX_SIZE, START, tau=0.1, seed=61, engine="static_clusters")
    now_workload = GrowthWorkload(fresh_rng(62), target_size=TARGET, byzantine_join_fraction=0.1)
    static_workload = GrowthWorkload(
        fresh_rng(62), target_size=TARGET, byzantine_join_fraction=0.1
    )
    now_runner = SimulationRunner(
        now_engine, now_workload, max_idle_streak=2, name="poly-now"
    )
    static_runner = SimulationRunner(
        static, static_workload, max_idle_streak=2, name="poly-static"
    )

    checkpoints = []
    for target in CHECKPOINTS:
        now_runner.run_until_size(target, max_steps=4 * TARGET)
        static_runner.run_until_size(target, max_steps=4 * TARGET)
        checkpoints.append(
            {
                "size": target,
                "now_clusters": now_engine.cluster_count,
                "now_max_cluster": max(now_engine.cluster_sizes().values()),
                "now_worst_fraction": now_engine.worst_cluster_fraction(),
                "static_clusters": static.cluster_count,
                "static_max_cluster": static.max_cluster_size(),
                "static_agreement_cost": static.implied_agreement_cost(),
                "now_agreement_cost": max(now_engine.cluster_sizes().values()) ** 2,
            }
        )
    return {
        "checkpoints": checkpoints,
        "split_threshold": now_engine.parameters.split_threshold,
        "now_invariants": now_engine.check_invariants(check_honest_majority=False).holds,
    }


@pytest.mark.experiment("E6")
def test_polynomial_size_variation(benchmark):
    result = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"E6 polynomial growth {START} -> {TARGET} (N={MAX_SIZE}): NOW vs static cluster count",
        headers=[
            "n",
            "NOW #clusters",
            "NOW max |C|",
            "NOW agr cost",
            "static #clusters",
            "static max |C|",
            "static agr cost",
        ],
    )
    for row in result["checkpoints"]:
        table.add_row(
            row["size"],
            row["now_clusters"],
            row["now_max_cluster"],
            row["now_agreement_cost"],
            row["static_clusters"],
            row["static_max_cluster"],
            row["static_agreement_cost"],
        )
    table.add_note(
        "Paper: with a static number of clusters a polynomial size increase inflates "
        "every cluster (and the quadratic intra-cluster agreement cost with it); NOW's "
        "split/merge keeps clusters at Theta(log N)."
    )
    table.print()

    first, last = result["checkpoints"][0], result["checkpoints"][-1]
    # NOW: cluster count grows, max cluster size stays below the split threshold.
    assert last["now_clusters"] > first["now_clusters"]
    assert last["now_max_cluster"] <= result["split_threshold"]
    # Static baseline: cluster count frozen, max cluster size grows ~ proportionally.
    assert last["static_clusters"] == first["static_clusters"]
    assert last["static_max_cluster"] > 2.5 * first["static_max_cluster"]
    # The implied per-cluster agreement cost gap widens by at least ~4x.
    assert last["static_agreement_cost"] > 4 * last["now_agreement_cost"]
    assert result["now_invariants"]
