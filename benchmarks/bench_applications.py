"""E8 — Applications (Section 6): broadcast O~(n) vs O(n^2); sampling polylog(n).

Paper claims (conclusion): "A broadcast algorithm using our technique would
have for instance O~(n) message complexity as compared to O(n^2) without the
clustering.  Similarly, a sampling algorithm relying on our protocol would
have a polylog(n) message complexity per sample."

What we run: on maintained NOW systems of increasing current size ``n``,
measure the per-broadcast and per-sample message cost of the clustered
applications, next to the naive unclustered costs.  Shape checks: the
clustered broadcast grows roughly linearly in ``n`` (fitted exponent near 1,
far below the naive 2), the per-sample cost does not grow with ``n``
(polylog in ``N`` only), and the cluster-level agreement service succeeds
while being far cheaper than whole-network Phase King.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentTable, fit_power_law
from repro.apps import ClusterAgreementService, ClusteredBroadcast, SamplingService
from repro.baselines import SingleClusterBaseline

from common import bootstrap_engine, run_once

MAX_SIZE = 16384
SIZES = [200, 400, 800]
SAMPLES_PER_SIZE = 20


def run_for_size(current_size: int, seed: int):
    engine = bootstrap_engine(MAX_SIZE, current_size, tau=0.1, seed=seed)
    naive = SingleClusterBaseline()

    broadcast_report = ClusteredBroadcast(engine).broadcast("payload")
    sampler = SamplingService(engine)
    samples = sampler.sample_many(SAMPLES_PER_SIZE)
    agreement = ClusterAgreementService(engine).decide()
    naive_agreement = naive.agreement_messages(current_size, fault_fraction=0.1)

    return {
        "n": current_size,
        "clusters": engine.cluster_count,
        "clustered_broadcast": broadcast_report.messages,
        "naive_broadcast": naive.broadcast_messages(current_size),
        "broadcast_coverage": broadcast_report.coverage(engine.cluster_count),
        "sample_cost": SamplingService.average_cost(samples),
        "cluster_agreement": agreement.physical_messages,
        "naive_agreement": naive_agreement,
        "agreement_ok": agreement.succeeded,
    }


def run_experiment():
    return [run_for_size(size, seed=500 + index) for index, size in enumerate(SIZES)]


@pytest.mark.experiment("E8")
def test_application_costs(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = ExperimentTable(
        title=f"E8 applications on NOW (N={MAX_SIZE}) vs unclustered baselines",
        headers=[
            "n",
            "#clusters",
            "clustered broadcast msgs",
            "naive broadcast msgs (n^2)",
            "per-sample msgs",
            "cluster agreement msgs",
            "naive agreement msgs",
        ],
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["clusters"],
            row["clustered_broadcast"],
            row["naive_broadcast"],
            row["sample_cost"],
            row["cluster_agreement"],
            row["naive_agreement"],
        )
    sizes = [row["n"] for row in rows]
    clustered_fit = fit_power_law(sizes, [row["clustered_broadcast"] for row in rows])
    naive_fit = fit_power_law(sizes, [row["naive_broadcast"] for row in rows])
    sample_fit = fit_power_law(sizes, [row["sample_cost"] for row in rows])
    table.add_note(
        f"Fitted exponents in n: clustered broadcast {clustered_fit.exponent:.2f} "
        f"(naive {naive_fit.exponent:.2f}); per-sample cost {sample_fit.exponent:.2f} "
        "(paper: O~(n) vs O(n^2) for broadcast, polylog(n) per sample). At these sizes "
        "the polylog factors still dominate the absolute broadcast numbers; the exponent "
        "gap is the reproducible shape."
    )
    table.print()

    # Broadcast: every cluster reached, growth ~linear vs the naive quadratic.
    assert all(row["broadcast_coverage"] == pytest.approx(1.0) for row in rows)
    assert clustered_fit.exponent < 1.45
    assert naive_fit.exponent > 1.9
    # Sampling: per-sample cost grows at most polylogarithmically with n
    # (the walk's log^2 n hop budget), far below any polynomial dependence.
    assert sample_fit.exponent < 0.8
    # Agreement among clusters succeeds and scales better than whole-network Phase King.
    assert all(row["agreement_ok"] for row in rows)
    agreement_fit = fit_power_law(sizes, [row["cluster_agreement"] for row in rows])
    naive_agreement_fit = fit_power_law(sizes, [row["naive_agreement"] for row in rows])
    assert agreement_fit.exponent < naive_agreement_fit.exponent
