"""Unit tests for workload generators, drivers and the analysis helpers."""

from __future__ import annotations

import math
import random

import pytest

from repro import NowEngine, default_parameters
from repro.adversary import ObliviousChurnAdversary
from repro.analysis import (
    ExperimentTable,
    azuma_exceedance_bound,
    chernoff_cluster_tail,
    expected_fraction_after_exchange,
    fit_polylog,
    fit_power_law,
    format_table,
    recommended_k,
    summarize_fractions,
    summarize_values,
)
from repro.analysis.bounds import exact_binomial_tail, expected_recovery_exchanges
from repro.analysis.complexity import is_consistent_with_polylog
from repro.analysis.statistics import longest_run_above, quantile
from repro.core.events import ChurnKind

try:
    import numpy as _np
except ImportError:
    _np = None

requires_numpy = pytest.mark.skipif(
    _np is None, reason="requires numpy (least-squares complexity fits)"
)
from repro.errors import ConfigurationError
from repro.workloads import (
    GrowthWorkload,
    MixedDriver,
    OscillatingWorkload,
    ShrinkWorkload,
    UniformChurn,
    drive,
)


@pytest.fixture
def churn_engine():
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    return NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=0.1, seed=9)


class TestWorkloads:
    def test_uniform_churn_keeps_size_roughly_stable(self, churn_engine):
        workload = UniformChurn(random.Random(1))
        drive(churn_engine, workload, steps=40)
        assert abs(churn_engine.network_size - 120) <= 20

    def test_uniform_churn_respects_lower_bound(self, churn_engine):
        workload = UniformChurn(random.Random(1), join_probability=0.0)
        drive(churn_engine, workload, steps=30)
        assert churn_engine.network_size >= min(120, churn_engine.parameters.lower_size_bound) - 30

    def test_uniform_churn_validates_probability(self):
        with pytest.raises(ConfigurationError):
            UniformChurn(random.Random(1), join_probability=1.5)

    def test_growth_workload_reaches_target_then_idles(self, churn_engine):
        workload = GrowthWorkload(random.Random(2), target_size=140)
        drive(churn_engine, workload, steps=60)
        assert churn_engine.network_size == 140
        assert workload.next_event(churn_engine) is None

    def test_shrink_workload_reaches_target(self, churn_engine):
        workload = ShrinkWorkload(random.Random(2), target_size=100)
        drive(churn_engine, workload, steps=60)
        assert churn_engine.network_size == 100

    def test_oscillating_workload_switches_direction(self, churn_engine):
        workload = OscillatingWorkload(
            random.Random(3), low_size=110, high_size=130, byzantine_join_fraction=0.1
        )
        kinds = []
        for _ in range(80):
            event = workload.next_event(churn_engine)
            kinds.append(event.kind)
            churn_engine.apply_event(event)
        assert ChurnKind.JOIN in kinds
        assert ChurnKind.LEAVE in kinds

    def test_oscillating_validates_sizes(self):
        with pytest.raises(ConfigurationError):
            OscillatingWorkload(random.Random(3), low_size=100, high_size=100)

    def test_growth_workload_validates_target(self):
        with pytest.raises(ConfigurationError):
            GrowthWorkload(random.Random(2), target_size=0)


class TestDrivers:
    def test_drive_returns_reports(self, churn_engine):
        workload = UniformChurn(random.Random(4))
        reports = drive(churn_engine, workload, steps=10)
        assert len(reports) == 10
        assert churn_engine.state.time_step == 10

    def test_drive_rejects_negative_steps(self, churn_engine):
        with pytest.raises(ConfigurationError):
            drive(churn_engine, UniformChurn(random.Random(4)), steps=-1)

    def test_mixed_driver_combines_sources(self, churn_engine):
        workload = UniformChurn(random.Random(5))
        adversary = ObliviousChurnAdversary(random.Random(6))
        driver = MixedDriver([(workload, 0.5), (adversary, 0.5)], random.Random(7))
        reports = driver.run(churn_engine, steps=20)
        assert len(reports) >= 15  # a source may occasionally idle

    def test_mixed_driver_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            MixedDriver([], random.Random(0))
        with pytest.raises(ConfigurationError):
            MixedDriver([(None, 0.0)], random.Random(0))


class TestBounds:
    def test_chernoff_tail_decreases_with_cluster_size(self):
        small = chernoff_cluster_tail(20, tau=0.2, epsilon=0.3)
        large = chernoff_cluster_tail(200, tau=0.2, epsilon=0.3)
        assert large < small < 1.0

    def test_chernoff_edge_cases(self):
        assert chernoff_cluster_tail(0, 0.2, 0.3) == 1.0
        assert chernoff_cluster_tail(50, 0.0, 0.3) == 0.0

    def test_exact_binomial_tail_matches_closed_form_small_case(self):
        # P[Bin(3, 0.5) >= 2] = 0.5
        assert exact_binomial_tail(3, 0.5, 2.0 / 3.0) == pytest.approx(0.5)

    def test_exact_tail_below_chernoff_regime(self):
        exact = exact_binomial_tail(60, 0.15, 1.0 / 3.0)
        assert 0.0 < exact < 0.05

    def test_azuma_bound_decreases_with_cluster_size(self):
        loose = azuma_exceedance_bound(20, epsilon=0.3, tau=0.2, exchanges=40)
        tight = azuma_exceedance_bound(80, epsilon=0.3, tau=0.2, exchanges=40)
        assert tight < loose <= 1.0

    def test_expected_fraction_after_exchange_is_tau(self):
        assert expected_fraction_after_exchange(0.21) == 0.21

    def test_expected_recovery_exchanges_positive(self):
        assert expected_recovery_exchanges(40, tau=0.2, epsilon=0.3) > 0

    def test_recommended_k_grows_with_stricter_failure_probability(self):
        lenient = recommended_k(4096, tau=0.2, epsilon=0.3, failure_probability=1e-2)
        strict = recommended_k(4096, tau=0.2, epsilon=0.3, failure_probability=1e-9)
        assert strict > lenient >= 1.0


@requires_numpy
class TestComplexityFitting:
    def test_power_law_recovers_exponent(self):
        sizes = [256, 1024, 4096, 16384]
        costs = [5.0 * n ** 1.5 for n in sizes]
        fit = fit_power_law(sizes, costs)
        assert fit.exponent == pytest.approx(1.5, abs=0.01)
        assert fit.r_squared > 0.999
        assert fit.predict(256) == pytest.approx(costs[0], rel=0.05)

    def test_polylog_recovers_exponent(self):
        sizes = [256, 1024, 4096, 16384, 65536]
        costs = [3.0 * math.log2(n) ** 4 for n in sizes]
        fit = fit_polylog(sizes, costs)
        assert fit.exponent == pytest.approx(4.0, abs=0.05)

    def test_polylog_data_judged_polylog(self):
        sizes = [256, 1024, 4096, 16384, 65536]
        polylog_costs = [math.log2(n) ** 5 for n in sizes]
        linear_costs = [25.0 * n for n in sizes]
        assert is_consistent_with_polylog(sizes, polylog_costs)
        assert not is_consistent_with_polylog(sizes, linear_costs)

    def test_fit_validations(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [5])
        with pytest.raises(ValueError):
            fit_power_law([1, 10], [5, 5])
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [0, 5])


class TestStatistics:
    def test_summarize_values_basic(self):
        summary = summarize_values([1, 2, 3, 4, 5], threshold=4)
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.maximum == 5
        assert summary.steps_above_threshold == 2
        assert summary.fraction_above_threshold == pytest.approx(0.4)

    def test_summarize_empty(self):
        summary = summarize_values([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_summarize_fractions_default_threshold(self):
        summary = summarize_fractions([0.1, 0.2, 0.4])
        assert summary.threshold == pytest.approx(1.0 / 3.0)
        assert summary.steps_above_threshold == 1

    def test_quantiles(self):
        values = sorted([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert quantile(values, 0.5) == pytest.approx(5.5)
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 10
        assert math.isnan(quantile([], 0.5))

    def test_longest_run_above(self):
        series = [0.1, 0.4, 0.5, 0.2, 0.4, 0.4, 0.4, 0.1]
        assert longest_run_above(series, 0.35) == 3
        assert longest_run_above([], 0.5) == 0

    def test_as_dict_round_trip(self):
        summary = summarize_values([1.0, 2.0], threshold=1.5)
        data = summary.as_dict()
        assert data["count"] == 2
        assert data["steps_above"] == 1


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["join", 123], ["leave", 4.5678]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert all(line.startswith("|") for line in lines)

    def test_format_table_large_and_small_floats(self):
        text = format_table(["x"], [[1e9], [1e-6], [0.0], [True]])
        assert "e+09" in text or "1.000e+09" in text
        assert "yes" in text

    def test_experiment_table_row_validation(self):
        table = ExperimentTable(title="demo", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)
        table.add_note("a note")
        rendered = table.render()
        assert "demo" in rendered
        assert "a note" in rendered
