"""Unit tests for the knowledge graph and the failure detector."""

from __future__ import annotations

import pytest

from repro.errors import UnknownNodeError
from repro.network.failure import FailureDetector
from repro.network.node import NodeDescriptor, NodeRole, NodeState
from repro.network.topology import KnowledgeGraph


def ring(size: int) -> KnowledgeGraph:
    graph = KnowledgeGraph()
    for index in range(size):
        graph.connect(index, (index + 1) % size)
    return graph


class TestKnowledgeGraphMutation:
    def test_add_node_idempotent(self):
        graph = KnowledgeGraph()
        graph.add_node(1)
        graph.add_node(1)
        assert len(graph) == 1

    def test_connect_adds_missing_nodes(self):
        graph = KnowledgeGraph()
        graph.connect(1, 2)
        assert graph.knows(1, 2)
        assert graph.knows(2, 1)

    def test_self_connection_ignored(self):
        graph = KnowledgeGraph()
        graph.add_node(1)
        graph.connect(1, 1)
        assert graph.degree(1) == 0

    def test_disconnect(self):
        graph = KnowledgeGraph()
        graph.connect(1, 2)
        graph.disconnect(1, 2)
        assert not graph.knows(1, 2)

    def test_remove_node_clears_edges(self):
        graph = ring(4)
        graph.remove_node(0)
        assert 0 not in graph
        assert not graph.knows(1, 0)
        assert not graph.knows(3, 0)

    def test_remove_unknown_node_raises(self):
        with pytest.raises(UnknownNodeError):
            KnowledgeGraph().remove_node(9)

    def test_connect_clique(self):
        graph = KnowledgeGraph()
        graph.connect_clique([1, 2, 3, 4])
        for first in (1, 2, 3, 4):
            assert graph.degree(first) == 3

    def test_connect_bipartite(self):
        graph = KnowledgeGraph()
        graph.connect_bipartite([1, 2], [3, 4, 5])
        assert graph.degree(1) == 3
        assert graph.degree(4) == 2
        assert not graph.knows(1, 2)


class TestKnowledgeGraphQueries:
    def test_edge_count(self):
        assert ring(5).edge_count() == 5

    def test_neighbours_are_copies(self):
        graph = ring(4)
        neighbours = graph.neighbours(0)
        neighbours.add(99)
        assert 99 not in graph.neighbours(0)

    def test_unknown_neighbours_raises(self):
        with pytest.raises(UnknownNodeError):
            ring(3).neighbours(7)

    def test_is_connected_true_for_ring(self):
        assert ring(6).is_connected()

    def test_is_connected_false_for_split_graph(self):
        graph = KnowledgeGraph()
        graph.connect(1, 2)
        graph.connect(3, 4)
        assert not graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert KnowledgeGraph().is_connected()

    def test_bfs_distances_on_ring(self):
        graph = ring(6)
        distances = graph.bfs_distances(0)
        assert distances[3] == 3
        assert distances[5] == 1

    def test_bfs_distances_restricted(self):
        graph = ring(6)
        distances = graph.bfs_distances(0, restrict_to={0, 1, 2})
        assert 3 not in distances
        assert distances[2] == 2

    def test_edges_iteration_sorted_pairs(self):
        graph = ring(4)
        for first, second in graph.edges():
            assert first < second

    def test_honest_adjacent_diameter_all_honest(self):
        graph = ring(6)
        honest = set(range(6))
        assert graph.honest_adjacent_diameter(honest) == 3

    def test_honest_adjacent_diameter_byzantine_cut(self):
        """Edges between two Byzantine nodes do not count."""
        graph = KnowledgeGraph()
        # path 0 - 1 - 2 - 3 where 1 and 2 are Byzantine: the 1-2 edge is unusable.
        graph.connect(0, 1)
        graph.connect(1, 2)
        graph.connect(2, 3)
        diameter_all_honest = graph.honest_adjacent_diameter({0, 1, 2, 3})
        diameter_with_byz = graph.honest_adjacent_diameter({0, 3})
        assert diameter_all_honest == 3
        assert diameter_with_byz >= 4  # 0 cannot reach 3 through the 1-2 edge


class TestFailureDetector:
    def make_detector(self):
        graph = ring(4)
        detector = FailureDetector(graph)
        for node_id in range(4):
            detector.register(NodeDescriptor(node_id=node_id))
        return graph, detector

    def test_alive_after_register(self):
        _, detector = self.make_detector()
        assert detector.is_alive(2)

    def test_mark_left_detected_by_neighbour_once(self):
        _, detector = self.make_detector()
        detector.mark_left(1)
        first_observer = detector.detect_departed_neighbours(0)
        second_observer = detector.detect_departed_neighbours(2)
        assert first_observer == [1]
        assert second_observer == []  # reported only once

    def test_crash_and_leave_both_reported(self):
        _, detector = self.make_detector()
        detector.mark_crashed(1)
        detector.mark_left(3)
        departed = detector.detect_departed_neighbours(0)
        assert set(departed) == {1, 3}

    def test_rejoin_clears_report(self):
        _, detector = self.make_detector()
        detector.mark_left(1)
        detector.detect_departed_neighbours(0)
        detector.mark_active(1)
        assert detector.is_alive(1)
        detector.mark_left(1)
        assert detector.detect_departed_neighbours(2) == [1]

    def test_state_queries(self):
        _, detector = self.make_detector()
        detector.mark_left(1)
        assert detector.state_of(1) is NodeState.LEFT
        assert 1 in detector.departed_nodes()
        assert 1 not in detector.active_nodes()

    def test_unknown_node_raises(self):
        _, detector = self.make_detector()
        with pytest.raises(UnknownNodeError):
            detector.mark_left(99)

    def test_forget(self):
        _, detector = self.make_detector()
        detector.mark_left(1)
        detector.forget(1)
        with pytest.raises(UnknownNodeError):
            detector.state_of(1)
