"""The packed shard wire protocol (``repro.shard.messages``) and batched router.

Two property families pin the PR 8 hot path to its oracles:

* **codec round trips** — ``pack_events``/``iter_events`` and
  ``pack_rows``/``iter_rows`` must be identities on every representable
  batch, and must degrade to the legacy tuple-list fallback (which the
  decoders accept interchangeably) whenever a value escapes the packed
  field ranges;
* **batched routing** — ``EventRouter.route_window`` must route arbitrary
  churn streams exactly like the per-event ``route`` loop it replaces:
  same ``RoutedEvent`` sequence, same directory fingerprint, same idle/step
  accounting, and wire buffers that decode to the events they carry.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import ChurnEvent
from repro.network.node import NodeRole
from repro.shard import ShardDirectory
from repro.shard.messages import (
    EVENT_RECORD,
    JOIN,
    LEAVE,
    ROW_RECORD,
    iter_events,
    iter_rows,
    pack_events,
    pack_rows,
)
from repro.shard.router import EventRouter

ROLES = [role.value for role in NodeRole]


# ----------------------------------------------------------------------
# Event-batch codec
# ----------------------------------------------------------------------
wire_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),  # step
        st.sampled_from([JOIN, LEAVE]),
        st.integers(min_value=0, max_value=2**32 - 1),  # gid
        st.sampled_from(ROLES),
        st.booleans(),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(rows=wire_events)
def test_event_batch_round_trip(rows):
    payload = pack_events(rows)
    assert isinstance(payload, bytes)
    assert len(payload) == len(rows) * EVENT_RECORD.size
    assert list(iter_events(payload)) == rows


def test_event_batch_oversize_falls_back_to_tuples():
    rows = [(1, JOIN, 2**32, "honest", True)]  # gid overflows u32
    payload = pack_events(rows)
    assert payload == rows  # whole batch degrades
    assert list(iter_events(payload)) == rows  # decoder accepts the fallback


def test_event_batch_unknown_kind_falls_back():
    rows = [(1, "x", 5, "honest", False)]
    assert pack_events(rows) == rows


# ----------------------------------------------------------------------
# Observation-row codec
# ----------------------------------------------------------------------
wire_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),  # step
        st.sampled_from([JOIN, LEAVE]),
        st.sampled_from(ROLES),
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
        st.integers(min_value=0, max_value=2**32 - 1),  # assigned
        st.integers(min_value=0, max_value=2**32 - 1),  # clusters
        st.floats(allow_nan=False, allow_infinity=False),  # worst (bit-exact f64)
        st.sampled_from(["join", "leave", "merge_split", None]),
        st.integers(min_value=0, max_value=2**32 - 1),  # messages
        st.integers(min_value=0, max_value=2**32 - 1),  # rounds
        st.integers(min_value=0, max_value=2**64 - 1),  # hops
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(rows=wire_rows)
def test_row_batch_round_trip(rows):
    payload = pack_rows(rows)
    assert isinstance(payload, tuple)
    ops, blob = payload
    assert len(blob) == len(rows) * ROW_RECORD.size
    assert len(ops) <= 255
    assert list(iter_rows(payload)) == rows


@pytest.mark.parametrize(
    "row",
    [
        # gid overflows u32
        (1, JOIN, "honest", None, 2**32, 3, 0.1, "join", 1, 1, 1),
        # node id overflows i32
        (1, LEAVE, "honest", 2**31, 5, 3, 0.1, "leave", 1, 1, 1),
        # hops overflows u64
        (1, JOIN, "honest", None, 5, 3, 0.1, "join", 1, 1, 2**64),
        # unknown role
        (1, JOIN, "observer", None, 5, 3, 0.1, "join", 1, 1, 1),
    ],
)
def test_row_batch_oversize_falls_back(row):
    rows = [row]
    payload = pack_rows(rows)
    assert payload == rows
    assert list(iter_rows(payload)) == rows


def test_row_batch_op_table_overflow_falls_back():
    rows = [
        (i, JOIN, "honest", None, i, 1, 0.0, f"op{i}", 0, 0, 0) for i in range(300)
    ]
    payload = pack_rows(rows)
    assert payload == rows  # 300 distinct op names exceed the one-byte table


# ----------------------------------------------------------------------
# route_window == per-event route
# ----------------------------------------------------------------------
def _build_directory(sizes, roles):
    directory = ShardDirectory(len(sizes))
    gid = 0
    for shard, size in enumerate(sizes):
        for _ in range(size):
            directory.register_initial(shard, gid, roles[gid])
            gid += 1
    return directory


def _script(rng, initial):
    """A valid churn stream over a model population of ``initial`` nodes."""
    active = set(range(initial))
    departed = set()
    next_id = initial
    script = []
    for _ in range(rng.randint(0, 120)):
        role = rng.choice([NodeRole.HONEST, NodeRole.BYZANTINE])
        draw = rng.random()
        if draw < 0.15:
            script.append(None)  # idle step
        elif draw < 0.45:
            script.append(ChurnEvent.join(role=role))
            active.add(next_id)
            next_id += 1
        elif draw < 0.60 and departed:
            gid = rng.choice(sorted(departed))
            departed.discard(gid)
            active.add(gid)
            script.append(ChurnEvent.join(role=role, node_id=gid))
        elif active:
            gid = rng.choice(sorted(active))
            active.discard(gid)
            departed.add(gid)
            script.append(ChurnEvent.leave(gid))
        else:
            script.append(None)
    return script


def _next_event_from(script):
    events = iter(script)

    def next_event():
        try:
            return next(events)
        except StopIteration:
            return None

    return next_event


def _serial_windows(script, directory, limit, max_idle_streak):
    """Replicates the pre-pipelining coordinator loop verbatim."""
    router = EventRouter(directory)
    next_event = _next_event_from(script)
    total = len(script)
    executed = 0
    idle_streak = 0
    windows = []
    while executed < total:
        routed_window = []
        idle_reason = None
        while len(routed_window) < limit and executed < total:
            executed += 1
            event = next_event()
            if event is None:
                idle_streak += 1
                if max_idle_streak is not None and idle_streak >= max_idle_streak:
                    idle_reason = "source idle"
                    break
                continue
            idle_streak = 0
            routed_window.append(router.route(event, executed))
        windows.append((routed_window, idle_reason))
        if idle_reason is not None:
            break
    return windows, router.events_routed


def _batched_windows(script, directory, limit, max_idle_streak):
    router = EventRouter(directory)
    next_event = _next_event_from(script)
    total = len(script)
    executed = 0
    idle_streak = 0
    windows = []
    while executed < total:
        window = router.route_window(
            next_event,
            next_step=executed + 1,
            limit=limit,
            max_steps=total - executed,
            idle_streak=idle_streak,
            max_idle_streak=max_idle_streak,
        )
        executed += window.steps
        idle_streak = window.idle_streak
        windows.append((window.routed, window.idle_reason))
        # The packed buffers must decode to exactly the events they carry.
        for shard, payload in window.batches.items():
            assert list(iter_events(payload)) == [
                routed.wire() for routed in window.routed if routed.shard == shard
            ]
        if window.idle_reason is not None:
            break
    return windows, router.events_routed


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    shards=st.sampled_from([1, 2, 4]),
    limit=st.sampled_from([1, 5, 16, 64]),
    max_idle_streak=st.sampled_from([None, 2, 5]),
)
def test_route_window_equals_per_event_route(seed, shards, limit, max_idle_streak):
    rng = random.Random(seed)
    sizes = [rng.randint(3, 10) for _ in range(shards)]
    roles = [
        NodeRole.BYZANTINE if rng.random() < 0.2 else NodeRole.HONEST
        for _ in range(sum(sizes))
    ]
    script = _script(rng, sum(sizes))

    serial_dir = _build_directory(sizes, roles)
    batched_dir = _build_directory(sizes, roles)
    serial = _serial_windows(script, serial_dir, limit, max_idle_streak)
    batched = _batched_windows(script, batched_dir, limit, max_idle_streak)

    assert batched == serial
    assert batched_dir.fingerprint() == serial_dir.fingerprint()
    # The incremental member sets stay the exact inverse of the owner map.
    for shard in range(shards):
        assert batched_dir.members[shard] == {
            gid for gid, owner in batched_dir.owner.items() if owner == shard
        }


def test_route_window_packed_fallback_per_shard():
    # A gid beyond u32 degrades only its own shard's buffer to tuples.
    directory = ShardDirectory(2)
    directory.register_initial(0, 0, NodeRole.HONEST)
    directory.register_initial(1, 2**33, NodeRole.HONEST)
    router = EventRouter(directory)
    script = [
        ChurnEvent.leave(2**33),  # shard 1: oversize gid, falls back
        ChurnEvent.leave(0),  # shard 0: packs fine
    ]
    window = router.route_window(
        _next_event_from(script), next_step=1, limit=8, max_steps=len(script)
    )
    assert isinstance(window.batches[0], bytes)
    assert isinstance(window.batches[1], list)
    for shard in (0, 1):
        assert list(iter_events(window.batches[shard])) == [
            routed.wire() for routed in window.routed if routed.shard == shard
        ]
