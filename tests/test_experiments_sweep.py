"""Tests for the experiment sweep subsystem and its CLI front end."""

from __future__ import annotations

import json

import pytest

from repro.analysis.statistics import mean_confidence
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import SweepSpec, SweepRunner, run_sweep, run_sweep_payload


def small_spec(**overrides) -> SweepSpec:
    fields = dict(
        name="test-sweep",
        scenario=dict(
            name="test-sweep",
            max_size=1024,
            initial_size=120,
            tau=0.1,
            steps=12,
            workload={"kind": "uniform"},
        ),
        grid={"tau": [0.1, 0.2]},
        seeds=[1, 2],
        workers=0,
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestMeanConfidence:
    def test_empty_and_singleton(self):
        empty = mean_confidence([])
        assert empty.count == 0 and empty.half_width == 0.0
        single = mean_confidence([3.0])
        assert single.count == 1
        assert single.mean == 3.0
        assert single.half_width == 0.0
        assert single.minimum == single.maximum == 3.0

    def test_known_values(self):
        stats = mean_confidence([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(1.2909944, abs=1e-6)
        assert stats.half_width == pytest.approx(1.96 * stats.std / 2.0)
        assert stats.lower == pytest.approx(stats.mean - stats.half_width)
        assert stats.upper == pytest.approx(stats.mean + stats.half_width)
        assert "±" in str(stats)

    def test_as_dict_round_trip(self):
        stats = mean_confidence([2.0, 4.0])
        payload = stats.as_dict()
        assert payload["count"] == 2
        assert payload["mean"] == pytest.approx(3.0)
        assert payload["lower"] <= payload["mean"] <= payload["upper"]

    def test_single_replicate_has_degenerate_interval(self):
        # n=1: no spread to estimate — the interval must collapse onto the
        # sample, not produce NaN from the (n-1) variance denominator.
        single = mean_confidence([7.5])
        assert single.std == 0.0
        assert single.lower == single.upper == single.mean == 7.5
        assert str(single) == "7.500 ± 0.000"

    def test_constant_samples_have_zero_width_interval(self):
        stats = mean_confidence([2.0] * 5)
        assert stats.count == 5
        assert stats.mean == 2.0
        assert stats.std == 0.0
        assert stats.half_width == 0.0
        assert stats.minimum == stats.maximum == 2.0

    def test_custom_z_scales_half_width(self):
        narrow = mean_confidence([1.0, 2.0, 3.0], z=1.0)
        wide = mean_confidence([1.0, 2.0, 3.0], z=2.0)
        assert wide.half_width == pytest.approx(2.0 * narrow.half_width)
        assert narrow.mean == wide.mean


class TestSweepSpec:
    def test_grid_expansion_is_cartesian_and_sorted(self):
        spec = small_spec(grid={"tau": [0.1, 0.2], "initial_size": [100, 120]})
        points = spec.grid_points()
        assert len(points) == 4
        assert {"initial_size": 100, "tau": 0.1} in points

    def test_payload_expansion_counts_and_seeds(self):
        spec = small_spec()
        payloads = spec.payloads()
        assert len(payloads) == 4  # 2 grid points x 2 seeds
        seeds = {(p["point"]["tau"], p["seed"]) for p in payloads}
        assert seeds == {(0.1, 1), (0.1, 2), (0.2, 1), (0.2, 2)}
        for payload in payloads:
            assert payload["scenario"]["tau"] == payload["point"]["tau"]
            assert payload["scenario"]["seed"] == payload["seed"]

    def test_dotted_grid_key_reaches_nested_field(self):
        spec = small_spec(grid={"engine_options.walk_mode": ["simulated", "oracle"]})
        payloads = spec.payloads()
        modes = {p["scenario"]["engine_options"]["walk_mode"] for p in payloads}
        assert modes == {"simulated", "oracle"}

    def test_preset_base_with_overrides(self):
        spec = SweepSpec(preset="uniform-churn", scenario={"steps": 7}, seeds=[3])
        fields = spec.base_fields()
        assert fields["workload"] == {"kind": "uniform"}
        assert fields["steps"] == 7

    def test_unknown_preset_and_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(preset="no-such-preset", seeds=[1]).base_fields()
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"bogus": 1})
        with pytest.raises(ConfigurationError):
            small_spec(grid={"tau": []}).grid_points()
        with pytest.raises(ConfigurationError):
            small_spec(grid={"steps.deep": [1]}).payloads()

    def test_json_round_trip(self):
        spec = small_spec()
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec

    def test_invalid_scenario_field_fails_eagerly(self):
        spec = small_spec(grid={"not_a_scenario_field": [1]})
        with pytest.raises(ConfigurationError):
            spec.payloads()


class TestSweepRunner:
    def test_inline_run_records_and_aggregates(self):
        result = run_sweep(small_spec())
        assert len(result.records) == 4
        assert result.workers_used == 1
        points = result.points()
        assert len(points) == 2
        for point in points:
            rows = result.records_for(point)
            assert [row["seed"] for row in rows] == [1, 2]
            aggregates = result.aggregate(point)
            events = aggregates["events"]
            assert events.count == 2
            assert events.mean == pytest.approx(
                sum(row["events"] for row in rows) / 2
            )
        table = result.summary_table()
        assert "tau=0.1" in table and "tau=0.2" in table

    def test_resume_file_skips_completed_units(self, tmp_path):
        progress = str(tmp_path / "progress.jsonl")
        runner = SweepRunner(small_spec())
        first = runner.run(resume_path=progress)
        assert runner.resumed_count == 0
        with open(progress, "r", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == len(first.records)

        # A second run reuses every unit from the file: nothing re-executes,
        # and the reused records are the exact objects from the first pass
        # (elapsed timings included, which a re-run could never reproduce).
        rerun = SweepRunner(small_spec())
        second = rerun.run(resume_path=progress)
        assert rerun.resumed_count == len(first.records)
        assert second.records == first.records

    def test_resume_runs_only_missing_units(self, tmp_path):
        progress = str(tmp_path / "progress.jsonl")
        spec = small_spec(seeds=[1])
        SweepRunner(spec).run(resume_path=progress)

        widened = small_spec(seeds=[1, 2])
        runner = SweepRunner(widened)
        result = runner.run(resume_path=progress)
        assert runner.resumed_count == 2  # both grid points of seed 1 reused
        assert len(result.records) == 4
        seeds_run = sorted({record["seed"] for record in result.records})
        assert seeds_run == [1, 2]

    def test_resume_ignores_records_from_a_different_spec(self, tmp_path):
        # Same grid points and seeds but a different step budget: the
        # 12-step records must NOT satisfy the 20-step sweep.
        progress = str(tmp_path / "progress.jsonl")
        SweepRunner(small_spec()).run(resume_path=progress)
        changed = small_spec()
        changed.scenario = dict(changed.scenario, steps=20)
        runner = SweepRunner(changed)
        result = runner.run(resume_path=progress)
        assert runner.resumed_count == 0
        assert all(record["steps"] == 20 for record in result.records)

    def test_resume_tolerates_truncated_progress_line(self, tmp_path):
        from repro.experiments import load_sweep_progress

        progress = str(tmp_path / "progress.jsonl")
        runner = SweepRunner(small_spec())
        runner.run(resume_path=progress)
        with open(progress, "a", encoding="utf-8") as handle:
            handle.write('{"point": {"tau": 0.3}, "se')  # killed mid-write
        completed = load_sweep_progress(progress)
        assert len(completed) == 4

    def test_parallel_resume_matches_inline(self, tmp_path):
        progress = str(tmp_path / "progress.jsonl")
        spec = small_spec(seeds=[1])
        SweepRunner(spec).run(resume_path=progress)
        parallel = SweepRunner(small_spec(seeds=[1, 2], workers=2))
        result = parallel.run(resume_path=progress)
        assert parallel.resumed_count == 2
        assert len([r for r in result.records if r is not None]) == 4

    def test_inline_run_is_deterministic(self):
        first = run_sweep(small_spec())
        second = run_sweep(small_spec())
        strip = lambda rows: [
            {k: v for k, v in row.items() if "second" not in k and "elapsed" not in k}
            for row in rows
        ]
        assert strip(first.records) == strip(second.records)

    def test_parallel_run_matches_inline(self):
        inline = run_sweep(small_spec())
        parallel = run_sweep(small_spec(workers=2))
        assert parallel.workers_used == 2
        strip = lambda rows: [
            {k: v for k, v in row.items() if "second" not in k and "elapsed" not in k}
            for row in rows
        ]
        assert strip(parallel.records) == strip(inline.records)

    def test_target_cluster_tracking(self):
        spec = small_spec(
            grid={},
            seeds=[5],
            track_target_cluster=True,
        )
        spec.scenario["adversary"] = {"kind": "join_leave", "target_cluster": "first"}
        result = run_sweep(spec)
        record = result.records[0]
        assert "target_peak_fraction" in record
        assert 0.0 <= record["target_peak_fraction"] <= 1.0

    def test_metric_lookup_errors_on_unknown(self):
        result = run_sweep(small_spec(grid={}, seeds=[1]))
        with pytest.raises(ConfigurationError):
            result.metric({}, "target_peak_fraction")

    def test_runner_validates_spec(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(small_spec(seeds=[]))
        with pytest.raises(ConfigurationError):
            SweepRunner(small_spec(workers=-1))

    def test_payload_worker_is_self_contained(self):
        payload = small_spec(seeds=[1]).payloads()[0]
        record = run_sweep_payload(json.loads(json.dumps(payload)))
        assert record["events"] > 0
        assert record["walk_hops"] >= 0


class TestRunSweepCli:
    def test_cli_runs_grid_across_two_workers(self, capsys):
        code = main(
            [
                "run-sweep",
                "--name",
                "uniform-churn",
                "--steps",
                "10",
                "--grid",
                "initial_size=120",
                "--num-seeds",
                "2",
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 worker process(es)" in out
        assert "events_per_second" in out
        assert "initial_size=120" in out

    def test_cli_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(small_spec(workers=1).to_json(), encoding="utf-8")
        code = main(["run-sweep", "--spec", str(spec_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tau=0.1" in out

    def test_cli_rejects_bad_input(self, capsys):
        assert main(["run-sweep"]) == 2
        assert main(["run-sweep", "--name", "uniform-churn", "--grid", "oops"]) == 2
        assert (
            main(["run-sweep", "--name", "uniform-churn", "--metrics", "bogus"]) == 2
        )
        assert main(["run-sweep", "--name", "no-such-preset", "--num-seeds", "1"]) == 2
