"""Unit tests for clusters, the cluster registry, the node registry and the system state."""

from __future__ import annotations

import random

import pytest

from repro.core.cluster import Cluster, ClusterRegistry
from repro.core.state import NodeRegistry, SystemState
from repro.errors import ProtocolViolationError, UnknownClusterError, UnknownNodeError
from repro.network.node import NodeRole
from repro.params import ProtocolParameters


class TestCluster:
    def test_membership_basics(self):
        cluster = Cluster(cluster_id=1, members={1, 2, 3})
        assert len(cluster) == 3
        assert 2 in cluster
        assert cluster.member_list() == [1, 2, 3]

    def test_add_and_remove(self):
        cluster = Cluster(cluster_id=1)
        cluster.add_member(5)
        assert 5 in cluster
        cluster.remove_member(5)
        assert 5 not in cluster

    def test_duplicate_add_rejected(self):
        cluster = Cluster(cluster_id=1, members={5})
        with pytest.raises(ProtocolViolationError):
            cluster.add_member(5)

    def test_remove_missing_rejected(self):
        cluster = Cluster(cluster_id=1)
        with pytest.raises(UnknownNodeError):
            cluster.remove_member(5)

    def test_swap_member(self):
        cluster = Cluster(cluster_id=1, members={1, 2})
        cluster.swap_member(1, 9)
        assert cluster.members == {2, 9}

    def test_swap_same_node_is_noop(self):
        cluster = Cluster(cluster_id=1, members={1, 2})
        cluster.swap_member(1, 1)
        assert cluster.members == {1, 2}

    def test_swap_validations(self):
        cluster = Cluster(cluster_id=1, members={1, 2})
        with pytest.raises(UnknownNodeError):
            cluster.swap_member(7, 9)
        with pytest.raises(ProtocolViolationError):
            cluster.swap_member(1, 2)

    def test_snapshot_is_immutable_copy(self):
        cluster = Cluster(cluster_id=1, members={1, 2})
        snapshot = cluster.snapshot()
        cluster.add_member(3)
        assert snapshot == frozenset({1, 2})


class TestClusterRegistry:
    def test_create_and_lookup(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster([1, 2, 3])
        assert registry.get(cluster.cluster_id) is cluster
        assert registry.cluster_of(2) == cluster.cluster_id
        assert registry.contains_node(3)
        assert registry.total_nodes() == 3

    def test_fresh_ids_never_reused(self):
        registry = ClusterRegistry()
        first = registry.create_cluster([1])
        registry.dissolve_cluster(first.cluster_id)
        second = registry.create_cluster([2])
        assert second.cluster_id != first.cluster_id

    def test_explicit_cluster_id(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster([1], cluster_id=10)
        assert cluster.cluster_id == 10
        follow_up = registry.create_cluster([2])
        assert follow_up.cluster_id > 10

    def test_node_in_two_clusters_rejected(self):
        registry = ClusterRegistry()
        registry.create_cluster([1, 2])
        with pytest.raises(ProtocolViolationError):
            registry.create_cluster([2, 3])

    def test_add_remove_member_updates_index(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster([1, 2])
        registry.add_member(cluster.cluster_id, 3)
        assert registry.cluster_of(3) == cluster.cluster_id
        registry.remove_member(cluster.cluster_id, 1)
        assert not registry.contains_node(1)

    def test_add_member_already_assigned_rejected(self):
        registry = ClusterRegistry()
        first = registry.create_cluster([1])
        second = registry.create_cluster([2])
        with pytest.raises(ProtocolViolationError):
            registry.add_member(second.cluster_id, 1)

    def test_move_member(self):
        registry = ClusterRegistry()
        first = registry.create_cluster([1, 2])
        second = registry.create_cluster([3])
        registry.move_member(1, second.cluster_id)
        assert registry.cluster_of(1) == second.cluster_id
        assert 1 not in registry.get(first.cluster_id)

    def test_swap_members_across_clusters(self):
        registry = ClusterRegistry()
        first = registry.create_cluster([1, 2])
        second = registry.create_cluster([3, 4])
        registry.swap_members(first.cluster_id, 1, second.cluster_id, 3)
        assert registry.cluster_of(1) == second.cluster_id
        assert registry.cluster_of(3) == first.cluster_id
        assert registry.total_nodes() == 4

    def test_dissolve_cluster_unassigns_members(self):
        registry = ClusterRegistry()
        cluster = registry.create_cluster([1, 2])
        registry.dissolve_cluster(cluster.cluster_id)
        assert not registry.contains_node(1)
        with pytest.raises(UnknownClusterError):
            registry.get(cluster.cluster_id)

    def test_unknown_lookups_raise(self):
        registry = ClusterRegistry()
        with pytest.raises(UnknownClusterError):
            registry.get(5)
        with pytest.raises(UnknownNodeError):
            registry.cluster_of(5)

    def test_sizes_mapping(self):
        registry = ClusterRegistry()
        a = registry.create_cluster([1, 2, 3])
        b = registry.create_cluster([4])
        assert registry.sizes() == {a.cluster_id: 3, b.cluster_id: 1}


class TestNodeRegistry:
    def test_register_and_roles(self):
        registry = NodeRegistry()
        honest = registry.register()
        byz = registry.register(role=NodeRole.BYZANTINE)
        assert not registry.is_byzantine(honest.node_id)
        assert registry.is_byzantine(byz.node_id)
        assert registry.active_count() == 2
        assert registry.byzantine_fraction() == pytest.approx(0.5)

    def test_ids_are_unique_and_monotone(self):
        registry = NodeRegistry()
        ids = [registry.register().node_id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_explicit_id_registration(self):
        registry = NodeRegistry()
        registry.register(node_id=50)
        follow_up = registry.register()
        assert follow_up.node_id > 50
        with pytest.raises(UnknownNodeError):
            registry.register(node_id=50)

    def test_leave_and_reactivate(self):
        registry = NodeRegistry()
        node = registry.register()
        registry.mark_left(node.node_id, time_step=5)
        assert not registry.is_active(node.node_id)
        assert node.node_id not in registry.active_nodes()
        registry.reactivate(node.node_id, time_step=9)
        assert registry.is_active(node.node_id)

    def test_active_byzantine_excludes_departed(self):
        registry = NodeRegistry()
        byz = registry.register(role=NodeRole.BYZANTINE)
        registry.register(role=NodeRole.BYZANTINE)
        registry.mark_left(byz.node_id, time_step=1)
        assert byz.node_id not in registry.active_byzantine()
        assert len(registry.active_byzantine()) == 1

    def test_unknown_node_raises(self):
        registry = NodeRegistry()
        with pytest.raises(UnknownNodeError):
            registry.get(3)


class TestSystemState:
    def build_state(self):
        params = ProtocolParameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
        state = SystemState(parameters=params, rng=random.Random(0))
        honest = [state.nodes.register().node_id for _ in range(6)]
        byz = [state.nodes.register(role=NodeRole.BYZANTINE).node_id for _ in range(2)]
        state.clusters.create_cluster(honest[:3] + byz[:1])   # 1/4 corrupt
        state.clusters.create_cluster(honest[3:] + byz[1:])   # 1/4 corrupt
        return state

    def test_network_size_and_fractions(self):
        state = self.build_state()
        assert state.network_size == 8
        fractions = state.byzantine_fractions()
        assert all(value == pytest.approx(0.25) for value in fractions.values())
        assert state.worst_cluster_fraction() == pytest.approx(0.25)

    def test_compromise_detection_threshold(self):
        state = self.build_state()
        assert state.compromised_clusters() == []
        assert len(state.compromised_clusters(threshold=0.2)) == 2

    def test_overlay_weight_sync(self):
        state = self.build_state()
        cluster_ids = state.clusters.cluster_ids()
        state.overlay.bootstrap(cluster_ids, weights=[1.0, 1.0])
        state.sync_all_overlay_weights()
        for cluster_id in cluster_ids:
            assert state.overlay.graph.weight(cluster_id) == len(
                state.clusters.get(cluster_id)
            )

    def test_advance_time(self):
        state = self.build_state()
        assert state.advance_time() == 1
        assert state.advance_time() == 2
        assert state.time_step == 2


class TestSwapFastPath:
    """The members_swapped listener fast path and its legacy fallback."""

    class _SwapAware:
        def __init__(self):
            self.swaps = []
            self.events = []

        def members_swapped(self, first_cluster, first_node, second_cluster, second_node):
            self.swaps.append((first_cluster, first_node, second_cluster, second_node))

        def member_added(self, cluster_id, node_id):
            self.events.append(("added", cluster_id, node_id))

        def member_removed(self, cluster_id, node_id):
            self.events.append(("removed", cluster_id, node_id))

    class _Legacy:
        def __init__(self):
            self.events = []

        def member_added(self, cluster_id, node_id):
            self.events.append(("added", cluster_id, node_id))

        def member_removed(self, cluster_id, node_id):
            self.events.append(("removed", cluster_id, node_id))

    def _registry(self):
        registry = ClusterRegistry()
        registry.create_cluster([1, 2], cluster_id=10)
        registry.create_cluster([3, 4], cluster_id=20)
        return registry

    def test_swap_aware_listener_gets_one_event(self):
        registry = self._registry()
        listener = self._SwapAware()
        registry.add_listener(listener)
        registry.swap_members(10, 1, 20, 3)
        assert listener.swaps == [(10, 1, 20, 3)]
        # No remove/add fallbacks were delivered to the swap-aware listener.
        assert listener.events == []
        assert registry.cluster_of(1) == 20 and registry.cluster_of(3) == 10

    def test_legacy_listener_gets_four_event_fallback(self):
        registry = self._registry()
        listener = self._Legacy()
        registry.add_listener(listener)
        registry.swap_members(10, 1, 20, 3)
        assert listener.events == [
            ("removed", 10, 1),
            ("added", 10, 3),
            ("removed", 20, 3),
            ("added", 20, 1),
        ]

    def test_mixed_listeners_each_get_their_protocol(self):
        registry = self._registry()
        aware, legacy = self._SwapAware(), self._Legacy()
        registry.add_listener(aware)
        registry.add_listener(legacy)
        registry.swap_members(10, 2, 20, 4)
        assert aware.swaps == [(10, 2, 20, 4)]
        assert len(legacy.events) == 4

    def test_corruption_counts_exact_under_swaps(self, small_params):
        """Swap accounting agrees with a from-scratch rebuild for every role mix."""
        state = SystemState(parameters=small_params, rng=random.Random(4))
        roles = [NodeRole.HONEST, NodeRole.BYZANTINE] * 4
        for index, role in enumerate(roles):
            state.nodes.register(role=role, node_id=index)
        state.clusters.create_cluster([0, 1, 2, 3], cluster_id=0)
        state.clusters.create_cluster([4, 5, 6, 7], cluster_id=1)
        rng = random.Random(9)
        for _ in range(50):
            first = rng.choice(sorted(state.clusters.get(0).members))
            second = rng.choice(sorted(state.clusters.get(1).members))
            state.clusters.swap_members(0, first, 1, second)
            observed = state.byzantine_fractions()
            for cluster_id in (0, 1):
                members = state.clusters.get(cluster_id).members
                expected = sum(
                    1 for node in members if state.nodes.is_byzantine(node)
                ) / len(members)
                assert observed[cluster_id] == pytest.approx(expected)
            assert state.worst_cluster_fraction() == pytest.approx(max(observed.values()))

    def test_member_list_cache_tracks_mutations(self):
        cluster = Cluster(cluster_id=1, members={3, 1})
        assert cluster.member_list() == [1, 3]
        cluster.add_member(2)
        assert cluster.member_list() == [1, 2, 3]
        cluster.remove_member(3)
        assert cluster.member_list() == [1, 2]
        cluster.swap_member(2, 9)
        assert cluster.member_list() == [1, 9]
        # Returned lists are fresh copies: mutating one never corrupts the cache.
        listed = cluster.member_list()
        listed.append(42)
        assert cluster.member_list() == [1, 9]
