"""Pipelined shard execution (PR 8): bit-identity, flushes, robustness.

``ShardCoordinator`` overlaps routing window *k+1* with the workers'
execution of window *k*.  The contract: **pipelining is an execution
choice**, exactly like the worker count — ``pipeline=True`` and
``pipeline=False`` produce bit-identical results, probe outputs, composite
hashes and recorded traces, for every worker count.  These tests pin that
property (including across the pipeline's flush points — index frames,
checkpoints, idle exhaustion, stop conditions), the worker-death
regression (a killed child must surface as ``ShardWorkerError``, not hang
the coordinator in ``recv``), and the ``run-scenario --profile`` smoke.
"""

from __future__ import annotations

import os
import pstats

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scenario
from repro.cli import main
from repro.scenarios.probes import CorruptionTrajectoryProbe, CostLedgerProbe
from repro.shard import (
    PHASE_KEYS,
    ShardCoordinator,
    ShardWorkerError,
    resume_sharded_checkpoint,
    run_sharded_scenario,
)
from repro.trace import trace_diff

COMPARED_FIELDS = (
    "scenario",
    "steps",
    "events",
    "idle_steps",
    "final_size",
    "final_cluster_count",
    "final_worst_fraction",
    "peak_worst_fraction",
    "compromised_clusters",
    "stop_reason",
    "shards",
)

BASE = dict(
    name="pipeline",
    max_size=256,
    initial_size=200,
    tau=0.12,
    seed=13,
    steps=150,
    shards=4,
)


def _scenario(**overrides):
    fields = dict(BASE)
    fields.update(overrides)
    return Scenario.from_dict(fields)


def _run(workers, pipeline, **overrides):
    session = run_sharded_scenario(
        _scenario(**overrides),
        workers=workers,
        pipeline=pipeline,
        probes=[CorruptionTrajectoryProbe(), CostLedgerProbe()],
    )
    result = session.result
    return (
        {name: getattr(result, name) for name in COMPARED_FIELDS},
        result.probes,
        session.final_state_hash,
    )


# ----------------------------------------------------------------------
# pipelined == unpipelined == across worker counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pipelined_equals_unpipelined(workers):
    assert _run(workers, pipeline=True) == _run(workers, pipeline=False)


def test_pipelined_overlaps_windows():
    coordinator = ShardCoordinator(_scenario(), workers=1)
    try:
        coordinator.run(BASE["steps"])
        assert coordinator.windows_pipelined > 0
        assert set(coordinator.phase_times) == set(PHASE_KEYS)
        assert all(value >= 0.0 for value in coordinator.phase_times.values())
    finally:
        coordinator.close()


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([1, 2]),
    barrier_interval=st.sampled_from([8, 32, 64]),
    adversary_weight=st.sampled_from([0.0, 0.4]),
)
def test_property_pipeline_mode_never_changes_results(
    seed, workers, barrier_interval, adversary_weight
):
    overrides = dict(
        seed=seed,
        steps=80,
        shards=2,
        shard_options={"barrier_interval": barrier_interval},
    )
    if adversary_weight:
        overrides["adversary"] = {"kind": "oblivious"}
        overrides["adversary_weight"] = adversary_weight
    oracle = _run(1, pipeline=False, **overrides)
    assert _run(workers, pipeline=True, **overrides) == oracle


# ----------------------------------------------------------------------
# Flush points: traces, checkpoints, idle exhaustion, stop conditions
# ----------------------------------------------------------------------
def test_traces_identical_across_pipeline_modes_and_workers(tmp_path):
    # Index frames hash worker state mid-run, so this exercises the
    # predicted-flush path (the pipeline must drain before each frame).
    first = str(tmp_path / "w1-serial.jsonl")
    second = str(tmp_path / "w4-pipelined.jsonl")
    s1 = run_sharded_scenario(
        _scenario(), workers=1, pipeline=False, trace_path=first, index_every=32
    )
    s4 = run_sharded_scenario(
        _scenario(), workers=4, pipeline=True, trace_path=second, index_every=32
    )
    assert s1.final_state_hash == s4.final_state_hash
    diff = trace_diff(first, second)
    assert not diff.diverged
    assert diff.compared_events == s1.result.events


def test_checkpoints_identical_across_pipeline_modes(tmp_path):
    serial = str(tmp_path / "serial.ckpt")
    pipelined = str(tmp_path / "pipelined.ckpt")
    run_sharded_scenario(
        _scenario(),
        workers=1,
        pipeline=False,
        checkpoint_path=serial,
        checkpoint_every=48,
    )
    run_sharded_scenario(
        _scenario(),
        workers=2,
        pipeline=True,
        checkpoint_path=pipelined,
        checkpoint_every=48,
    )
    resumed_serial = resume_sharded_checkpoint(serial, workers=1, steps=50)
    resumed_pipelined = resume_sharded_checkpoint(pipelined, workers=2, steps=50)
    assert resumed_serial.final_state_hash == resumed_pipelined.final_state_hash


def test_idle_exhaustion_flushes_and_matches_serial():
    overrides = dict(
        workload={"kind": "growth", "target_size": 230},
        max_idle_streak=4,
        steps=400,
    )
    oracle = _run(1, pipeline=False, **overrides)
    run = _run(1, pipeline=True, **overrides)
    assert run == oracle
    assert run[0]["stop_reason"] == "source idle"


def test_stop_conditions_disable_pipelining_and_match_serial():
    def stop(engine, report, step):
        return "big enough" if report.network_size >= 205 else None

    def run(pipeline):
        coordinator = ShardCoordinator(
            _scenario(), workers=1, stop_conditions=[stop], pipeline=pipeline
        )
        try:
            result = coordinator.run(BASE["steps"])
            return (
                result.stop_reason,
                result.events,
                coordinator.state_hash(),
                coordinator.windows_pipelined,
            )
        finally:
            coordinator.close()

    reason, events, state_hash, pipelined_windows = run(True)
    assert pipelined_windows == 0  # stop conditions are a standing flush
    assert (reason, events, state_hash) == run(False)[:3]
    assert reason == "big enough"


# ----------------------------------------------------------------------
# Worker-death robustness
# ----------------------------------------------------------------------
def test_worker_killed_mid_run_raises_shard_worker_error():
    coordinator = ShardCoordinator(_scenario(steps=2000), workers=2)
    processes = [transport._process for transport in coordinator._transports]
    try:
        coordinator.run(50)  # healthy windows first
        victim = processes[1]
        victim.kill()
        victim.join(5)
        with pytest.raises(ShardWorkerError, match="died mid-command"):
            coordinator.run(1950)
    finally:
        coordinator.close()
    # close() must reap every child, including the killed one.
    assert all(not process.is_alive() for process in processes)


def test_worker_exception_carries_remote_traceback():
    coordinator = ShardCoordinator(_scenario(), workers=2)
    try:
        with pytest.raises(ShardWorkerError, match="ConfigurationError"):
            coordinator._transports[0].call("state_hash", 999)  # unhosted shard
    finally:
        coordinator.close()


# ----------------------------------------------------------------------
# run-scenario --profile smoke
# ----------------------------------------------------------------------
def run_cli(*argv):
    return main(list(argv))


@pytest.mark.parametrize("extra", [(), ("--shards", "2")])
def test_profile_flag_writes_loadable_pstats(tmp_path, capsys, extra):
    out = os.path.join(str(tmp_path), "run.pstats")
    code = run_cli(
        "run-scenario", "--name", "uniform-churn", "--steps", "40",
        "--profile", out, *extra,
    )
    assert code == 0
    assert "profile written to" in capsys.readouterr().out
    stats = pstats.Stats(out)
    assert stats.total_calls > 0


def test_no_pipeline_flag_runs_serial(capsys):
    code = run_cli(
        "run-scenario", "--name", "uniform-churn", "--steps", "40",
        "--shards", "1", "--no-pipeline",
    )
    assert code == 0
    assert "final state hash:" in capsys.readouterr().out
