"""CLI tests for the trace subsystem: record, resume, replay, trace-diff."""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.trace import Checkpoint, TraceReader


def run_cli(*argv):
    return main(list(argv))


class TestRecordAndReplayCli:
    def test_record_replay_round_trip(self, tmp_path, capsys):
        trace = os.path.join(str(tmp_path), "run.jsonl")
        code = run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "40",
            "--record", trace, "--index-every", "10",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final state hash:" in out
        assert TraceReader(trace).event_count() == 40

        assert run_cli("replay", "--trace", trace) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out

    def test_replay_exits_nonzero_on_divergence(self, tmp_path, capsys):
        trace = os.path.join(str(tmp_path), "run.jsonl")
        assert run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "30",
            "--record", trace, "--index-every", "10",
        ) == 0
        capsys.readouterr()
        lines = open(trace, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "ev" and frame["i"] == 5:
                frame["w"] = 0.999
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        with open(trace, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        assert run_cli("replay", "--trace", trace) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_missing_file_is_usage_error(self, tmp_path, capsys):
        assert run_cli("replay", "--trace", os.path.join(str(tmp_path), "no.jsonl")) == 2
        assert "replay:" in capsys.readouterr().err


class TestResumeCli:
    def test_checkpoint_then_resume_matches_straight_run(self, tmp_path, capsys):
        straight_trace = os.path.join(str(tmp_path), "straight.jsonl")
        assert run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "60",
            "--record", straight_trace,
        ) == 0
        straight_out = capsys.readouterr().out
        straight_hash = [
            line for line in straight_out.splitlines() if "final state hash" in line
        ][0].split()[-1]

        checkpoint = os.path.join(str(tmp_path), "part.ckpt.json")
        assert run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "25",
            "--checkpoint", checkpoint, "--checkpoint-every", "1000",
        ) == 0
        capsys.readouterr()
        assert run_cli("resume", "--checkpoint", checkpoint, "--steps", "35") == 0
        resume_out = capsys.readouterr().out
        resumed_hash = [
            line for line in resume_out.splitlines() if "final state hash" in line
        ][0].split()[-1]
        assert resumed_hash == straight_hash

    def test_resume_missing_checkpoint_is_usage_error(self, tmp_path, capsys):
        assert run_cli("resume", "--checkpoint", os.path.join(str(tmp_path), "no.json")) == 2
        assert "resume:" in capsys.readouterr().err

    def test_checkpoint_file_records_progress(self, tmp_path, capsys):
        checkpoint = os.path.join(str(tmp_path), "c.json")
        assert run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "20",
            "--checkpoint", checkpoint, "--checkpoint-every", "7",
        ) == 0
        capsys.readouterr()
        assert Checkpoint.load(checkpoint).steps_done == 20


class TestTraceDiffCli:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        a = os.path.join(str(tmp_path), "a.jsonl")
        b = os.path.join(str(tmp_path), "b.jsonl")
        for path in (a, b):
            assert run_cli(
                "run-scenario", "--name", "uniform-churn", "--steps", "30",
                "--record", path,
            ) == 0
        capsys.readouterr()
        assert run_cli("trace-diff", a, b) == 0
        assert "traces agree" in capsys.readouterr().out

    def test_diverging_traces_exit_one_and_name_the_step(self, tmp_path, capsys):
        a = os.path.join(str(tmp_path), "a.jsonl")
        b = os.path.join(str(tmp_path), "b.jsonl")
        assert run_cli(
            "run-scenario", "--name", "uniform-churn", "--steps", "30", "--record", a,
        ) == 0
        assert run_cli(
            "--seed", "2", "run-scenario", "--name", "uniform-churn", "--steps", "30",
            "--record", b,
        ) == 0
        capsys.readouterr()
        assert run_cli("trace-diff", a, b) == 1
        assert "first divergence at step" in capsys.readouterr().out
