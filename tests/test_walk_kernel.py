"""Property tests for the batched CSR walk kernel (``repro.walks.kernel``).

Three families of guarantees pin the kernel to the naive walk machinery:

* **Distributional equivalence** (chi-square): batched CTRW endpoints and
  biased-walk cluster picks from :class:`ArrayKernel` are statistically
  indistinguishable from the naive per-hop implementations and from the
  analytic ``|C|/n`` target — on static graphs, after mutations, on both
  the numpy and the pure-python backend, and across the scalar/vector path
  split at ``MIN_VECTOR_BATCH``.

* **Bit-exact checkpointing**: the kernel's private stream and pre-drawn
  buffers survive a JSON round trip; a restored kernel reproduces the
  uninterrupted draw sequence value-for-value and never consumes the
  parent (engine) stream.

* **Resume equals uninterrupted** at the engine level: a run recorded with
  ``engine_options={"walk_kernel": "array"}``, checkpointed and resumed,
  lands on the same state hash as the straight-through run — for both walk
  modes, property-tested over random cut points.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import NowEngine
from repro.errors import ConfigurationError, WalkError
from repro.walks import ArrayKernel, KERNEL_NAMES, resolve_kernel_name
from repro.walks.biased import BiasedClusterWalk
from repro.walks.ctrw import ContinuousRandomWalk
from repro.walks.kernel import MIN_VECTOR_BATCH, _np
from repro.walks.sampler import ClusterSampler, WalkMode

from test_trace_checkpoint import run_split, run_straight, small_scenario
from test_walk_fastpath import (
    apply_operations,
    chi_square_critical,
    chi_square_statistic,
    seeded_overlay,
)

#: Both backends where numpy is installed, the fallback alone otherwise.
BACKENDS = ("numpy", "python") if _np is not None else ("python",)

requires_numpy = pytest.mark.skipif(_np is None, reason="numpy not installed")


def two_sample_statistic(first_counts, second_counts, keys) -> float:
    statistic = 0.0
    for key in keys:
        a, b = first_counts.get(key, 0), second_counts.get(key, 0)
        if a + b:
            statistic += (a - b) ** 2 / (a + b)
    return statistic


# ----------------------------------------------------------------------
# Kernel selection and validation
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_known_names_resolve(self):
        assert KERNEL_NAMES == ("naive", "array")
        for name in KERNEL_NAMES:
            assert resolve_kernel_name(name) == name

    @pytest.mark.parametrize("bogus", ["fast", "", None, 3, "ARRAY"])
    def test_unknown_names_rejected(self, bogus):
        with pytest.raises(ConfigurationError):
            resolve_kernel_name(bogus)

    def test_kernel_name_threads_through_walk_stack(self):
        graph = seeded_overlay()
        rng = random.Random(1)
        assert ContinuousRandomWalk(graph, rng, kernel="array").kernel_name == "array"
        walk = BiasedClusterWalk(graph, rng, segment_duration=4.0, kernel="array")
        assert walk.kernel_name == "array"
        sampler = ClusterSampler(graph, rng, segment_duration=4.0, kernel="array")
        assert sampler.kernel_name == "array"
        assert sampler.with_mode(WalkMode.ORACLE).kernel_name == "array"

    def test_walk_constructors_reject_unknown_kernel(self):
        graph = seeded_overlay()
        with pytest.raises(ConfigurationError):
            ContinuousRandomWalk(graph, random.Random(1), kernel="simd")
        with pytest.raises(ConfigurationError):
            ClusterSampler(graph, random.Random(1), segment_duration=4.0, kernel="simd")

    def test_engine_rejects_unknown_kernel_at_bootstrap(self):
        scenario = small_scenario(steps=5, engine_options={"walk_kernel": "simd"})
        with pytest.raises(ConfigurationError):
            scenario.build_engine()

    def test_array_kernel_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ArrayKernel(seeded_overlay(), random.Random(1), backend="fortran")

    def test_batch_input_validation(self):
        graph = seeded_overlay()
        kernel = ArrayKernel(graph, random.Random(1))
        with pytest.raises(WalkError):
            kernel.run_ctrw_batch([0, 999], duration=1.0)
        with pytest.raises(WalkError):
            kernel.run_ctrw_batch([0], duration=-1.0)
        with pytest.raises(WalkError):
            kernel.run_biased_batch([0], segment_duration=0.0, max_restarts=4)
        with pytest.raises(WalkError):
            kernel.run_biased_batch([0], segment_duration=1.0, max_restarts=0)
        assert kernel.run_ctrw_batch([], duration=1.0) == []


# ----------------------------------------------------------------------
# Distributional pinning (chi-square)
# ----------------------------------------------------------------------
class TestDistributionPinning:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ctrw_batch_matches_naive_endpoints(self, backend):
        """Batched kernel CTRWs and naive run() walks agree on the endpoint law."""
        graph = seeded_overlay(vertices=6, seed=7)
        samples, duration = 4000, 6.0
        naive = ContinuousRandomWalk(graph, random.Random(101))
        naive_counts = {v: 0 for v in graph.vertices()}
        for _ in range(samples):
            naive_counts[naive.run(0, duration).endpoint] += 1
        kernel = ArrayKernel(graph, random.Random(202), backend=backend)
        kernel_counts = {v: 0 for v in graph.vertices()}
        for endpoint, hops, elapsed in kernel.run_ctrw_batch([0] * samples, duration):
            kernel_counts[endpoint] += 1
            assert 0.0 <= elapsed <= duration
            assert hops >= 0
        statistic = two_sample_statistic(naive_counts, kernel_counts, graph.vertices())
        assert statistic < chi_square_critical(len(graph) - 1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ctrw_batch_matches_naive_after_mutations(self, backend):
        """The kernel reads the rebuilt CSR after churn, not a stale snapshot."""
        graph = seeded_overlay(vertices=7, seed=11)
        kernel = ArrayKernel(graph, random.Random(31), backend=backend)
        kernel.run_ctrw_batch([0] * 200, 4.0)  # materialise, then churn
        apply_operations(
            graph,
            [("add_vertex", 1, 0), ("add_edge", 7, 0), ("remove_edge", 0, 1), ("set_weight", 2, 5)],
            random.Random(3),
        )
        samples, duration = 4000, 6.0
        naive = ContinuousRandomWalk(graph, random.Random(41))
        naive_counts = {v: 0 for v in graph.vertices()}
        for _ in range(samples):
            naive_counts[naive.run(0, duration).endpoint] += 1
        kernel_counts = {v: 0 for v in graph.vertices()}
        for endpoint, _, _ in kernel.run_ctrw_batch([0] * samples, duration):
            kernel_counts[endpoint] += 1
        statistic = two_sample_statistic(naive_counts, kernel_counts, graph.vertices())
        assert statistic < chi_square_critical(len(graph) - 1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_biased_batch_matches_target_distribution(self, backend):
        """Kernel biased walks hit the stationary ``|C|/n`` law on the overlay."""
        graph = seeded_overlay(vertices=6, seed=7)
        kernel = ArrayKernel(graph, random.Random(53), backend=backend)
        samples = 4000
        counts = {v: 0 for v in graph.vertices()}
        for cluster, hops, restarts, tests, truncated in kernel.run_biased_batch(
            [0] * samples, segment_duration=25.0, max_restarts=64
        ):
            counts[cluster] += 1
            assert restarts == tests >= 1
            assert not truncated
        target = graph.target_distribution()
        statistic = chi_square_statistic(
            [counts[v] for v in sorted(counts)],
            [samples * target[v] for v in sorted(counts)],
        )
        assert statistic < chi_square_critical(len(counts) - 1)

    @requires_numpy
    def test_scalar_and_vector_paths_agree(self):
        """Sub-threshold (scalar) and large (vector) batches share one law."""
        graph = seeded_overlay(vertices=6, seed=7)
        duration = 6.0
        small_batch = MIN_VECTOR_BATCH - 1
        scalar = ArrayKernel(graph, random.Random(61), backend="numpy")
        scalar_counts = {v: 0 for v in graph.vertices()}
        drawn = 0
        while drawn < 4000:
            for endpoint, _, _ in scalar.run_ctrw_batch([0] * small_batch, duration):
                scalar_counts[endpoint] += 1
            drawn += small_batch
        vector = ArrayKernel(graph, random.Random(67), backend="numpy")
        vector_counts = {v: 0 for v in graph.vertices()}
        for endpoint, _, _ in vector.run_ctrw_batch([0] * drawn, duration):
            vector_counts[endpoint] += 1
        statistic = two_sample_statistic(scalar_counts, vector_counts, graph.vertices())
        assert statistic < chi_square_critical(len(graph) - 1)

    def test_sampler_batch_matches_target(self):
        """ClusterSampler.sample_many under the array kernel targets ``|C|/n``."""
        graph = seeded_overlay(vertices=6, seed=7)
        sampler = ClusterSampler(
            graph, random.Random(71), segment_duration=25.0, kernel="array"
        )
        samples = 4000
        counts = {v: 0 for v in graph.vertices()}
        for outcome in sampler.sample_many([0] * samples):
            counts[outcome.cluster] += 1
            assert outcome.mode is WalkMode.SIMULATED
        target = graph.target_distribution()
        statistic = chi_square_statistic(
            [counts[v] for v in sorted(counts)],
            [samples * target[v] for v in sorted(counts)],
        )
        assert statistic < chi_square_critical(len(counts) - 1)

    def test_isolated_start_vertex(self):
        graph = seeded_overlay()
        graph.add_vertex(99, weight=1.0)  # no edges
        kernel = ArrayKernel(graph, random.Random(1))
        ((endpoint, hops, elapsed),) = kernel.run_ctrw_batch([99], 5.0)
        assert (endpoint, hops, elapsed) == (99, 0, 0.0)
        ((cluster, hops, restarts, _, _),) = kernel.run_biased_batch(
            [99], segment_duration=5.0, max_restarts=8
        )
        assert cluster == 99 and hops == 0 and restarts >= 1


# ----------------------------------------------------------------------
# Bit-exact kernel checkpointing
# ----------------------------------------------------------------------
class TestKernelCheckpoint:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_is_bit_exact(self, backend):
        """A JSON-round-tripped kernel replays the uninterrupted sequence."""
        graph = seeded_overlay(vertices=6, seed=7)
        kernel = ArrayKernel(graph, random.Random(3), backend=backend)
        kernel.run_ctrw_batch([0, 1, 2] * 20, 4.0)  # consume into the buffers
        snapshot = json.loads(json.dumps(kernel.snapshot_state()))
        resumed = ArrayKernel(graph, random.Random(999), backend=backend)
        resumed.restore_state(snapshot)
        # Mixed batch sizes cross the scalar/vector threshold both ways.
        for starts in ([0] * (MIN_VECTOR_BATCH + 8), [1, 2], [3] * 5):
            assert kernel.run_ctrw_batch(starts, 3.5) == resumed.run_ctrw_batch(starts, 3.5)
            assert kernel.run_biased_batch(starts, 5.0, 16) == resumed.run_biased_batch(
                starts, 5.0, 16
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unused_kernel_round_trips(self, backend):
        """An unseeded kernel snapshots to ``rng: None`` and seeds identically."""
        graph = seeded_overlay()
        kernel = ArrayKernel(graph, random.Random(11), backend=backend)
        snapshot = json.loads(json.dumps(kernel.snapshot_state()))
        assert snapshot["rng"] is None
        resumed = ArrayKernel(graph, random.Random(11), backend=backend)
        resumed.restore_state(snapshot)
        starts = [0] * 40
        assert kernel.run_ctrw_batch(starts, 4.0) == resumed.run_ctrw_batch(starts, 4.0)

    def test_restore_never_consumes_parent_stream(self):
        graph = seeded_overlay()
        parent = random.Random(5)
        kernel = ArrayKernel(graph, parent)
        kernel.run_ctrw_batch([0] * 10, 2.0)  # seeds the private stream
        before = parent.getstate()
        kernel.restore_state(json.loads(json.dumps(kernel.snapshot_state())))
        assert parent.getstate() == before

    def test_backend_mismatch_is_rejected(self):
        graph = seeded_overlay()
        kernel = ArrayKernel(graph, random.Random(1), backend="python")
        snapshot = kernel.snapshot_state()
        snapshot["backend"] = "numpy"
        with pytest.raises(ConfigurationError):
            kernel.restore_state(snapshot)

    def test_sampler_walk_state_round_trips(self):
        """Kernel state survives the sampler-level snapshot used by RandCl."""
        graph = seeded_overlay(vertices=6, seed=7)
        sampler = ClusterSampler(
            graph, random.Random(13), segment_duration=6.0, kernel="array"
        )
        sampler.sample_many([0] * 50)
        state = json.loads(json.dumps(sampler.snapshot_walk_state()))
        assert state["kernel"] is not None
        twin = ClusterSampler(
            graph, random.Random(13), segment_duration=6.0, kernel="array"
        )
        twin.restore_walk_state(state)
        first = [outcome.cluster for outcome in sampler.sample_many([0] * 40)]
        second = [outcome.cluster for outcome in twin.sample_many([0] * 40)]
        assert first == second


# ----------------------------------------------------------------------
# Engine-level resume equals uninterrupted
# ----------------------------------------------------------------------
class TestEngineResume:
    @pytest.mark.parametrize("walk_mode", ["simulated", "oracle"])
    def test_resume_equals_uninterrupted(self, walk_mode, tmp_path):
        fields = dict(
            steps=60, engine_options={"walk_mode": walk_mode, "walk_kernel": "array"}
        )
        straight = run_straight(small_scenario(**fields), 60)
        split = run_split(small_scenario(**fields), 25, 35, tmp_path)
        assert split == straight

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(seed=st.integers(0, 10_000), cut=st.integers(1, 59))
    def test_property_random_cut(self, seed, cut, tmp_path_factory):
        total = 60
        fields = dict(
            steps=total,
            seed=seed,
            engine_options={"walk_mode": "simulated", "walk_kernel": "array"},
        )
        straight = run_straight(small_scenario(**fields), total)
        tmp_path = tmp_path_factory.mktemp("kernel-resume")
        split = run_split(small_scenario(**fields), cut, total - cut, tmp_path)
        assert split == straight

    def test_config_round_trips_walk_kernel(self):
        scenario = small_scenario(steps=10, engine_options={"walk_kernel": "array"})
        engine = scenario.build_engine()
        assert engine.config.walk_kernel == "array"
        snapshot = json.loads(json.dumps(engine.capture_snapshot()))
        assert snapshot["config"]["walk_kernel"] == "array"
        restored = NowEngine.restore(snapshot)
        assert restored.config.walk_kernel == "array"

    def test_pre_kernel_checkpoints_default_to_naive(self):
        """Checkpoints written before this field existed restore as naive."""
        engine = small_scenario(steps=5).build_engine()
        snapshot = json.loads(json.dumps(engine.capture_snapshot()))
        del snapshot["config"]["walk_kernel"]
        snapshot["randcl"].pop("kernel", None)
        restored = NowEngine.restore(snapshot)
        assert restored.config.walk_kernel == "naive"


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestWalkKernelCli:
    # ``repro.cli`` is imported lazily so a stripped environment where the
    # CLI stack cannot import skips these tests instead of erroring.
    @staticmethod
    def _main(argv):
        cli = pytest.importorskip("repro.cli")
        return cli.main(argv)

    def test_run_scenario_accepts_walk_kernel_flag(self, capsys):
        code = self._main(
            [
                "--seed", "5",
                "run-scenario", "--name", "uniform-churn",
                "--steps", "10", "--walk-kernel", "array",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario 'uniform-churn'" in captured

    def test_walk_kernel_rejected_for_baseline_engines(self, tmp_path, capsys):
        from repro.scenarios import Scenario

        spec = Scenario(
            name="baseline-spec",
            max_size=1024,
            initial_size=90,
            tau=0.1,
            k=2.0,
            seed=4,
            steps=5,
            engine="no_shuffle",
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        code = self._main(["run-scenario", "--spec", str(path), "--walk-kernel", "array"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--walk-kernel" in captured.err

    def test_spec_engine_options_kernel_rejected_for_baseline_engines(self, tmp_path, capsys):
        # The spec-file route must fail as cleanly as the flag route: a
        # one-line exit-2 message, not a TypeError from the baseline's ctor.
        from repro.scenarios import Scenario

        spec = Scenario(
            name="baseline-spec",
            max_size=1024,
            initial_size=90,
            tau=0.1,
            k=2.0,
            seed=4,
            steps=5,
            engine="no_shuffle",
            engine_options={"walk_kernel": "array"},
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        code = self._main(["run-scenario", "--spec", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "walk_kernel" in captured.err
        assert "no_shuffle" in captured.err

    def test_unknown_kernel_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            self._main(["run-scenario", "--name", "uniform-churn", "--walk-kernel", "simd"])
