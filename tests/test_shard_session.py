"""Trace, checkpoint and CLI integration of sharded runs (``repro.shard.session``).

The determinism contract extended to sharded execution: traces recorded
under different worker counts diff clean, a checkpointed run resumed with
*any* worker count lands bit-identical to the uninterrupted run, and the
``replay`` command refuses sharded traces loudly (there is no single engine
to re-drive) while ``trace-diff`` handles them like any other trace.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Scenario
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.shard import (
    SHARDED_CHECKPOINT_FORMAT,
    resume_sharded_checkpoint,
    run_sharded_scenario,
)
from repro.trace import replay_trace, resume_from_checkpoint, trace_diff

FIELDS = dict(
    name="session",
    max_size=256,
    initial_size=200,
    tau=0.12,
    seed=21,
    steps=150,
    shards=4,
    adversary={"kind": "oblivious"},
    adversary_weight=0.3,
)


def _scenario(**overrides):
    fields = dict(FIELDS)
    fields.update(overrides)
    return Scenario.from_dict(fields)


def test_traces_from_different_worker_counts_diff_clean(tmp_path):
    first = str(tmp_path / "w1.jsonl")
    second = str(tmp_path / "w4.binary")
    s1 = run_sharded_scenario(_scenario(), workers=1, trace_path=first)
    s4 = run_sharded_scenario(
        _scenario(), workers=4, trace_path=second, trace_format="binary"
    )
    assert s1.final_state_hash == s4.final_state_hash
    diff = trace_diff(first, second)
    assert not diff.diverged
    assert diff.compared_events == s1.result.events


def test_sharded_trace_header_and_end_frame(tmp_path):
    path = str(tmp_path / "sharded.jsonl")
    session = run_sharded_scenario(_scenario(), workers=2, trace_path=path, index_every=64)
    with open(path, "r", encoding="utf-8") as handle:
        frames = [json.loads(line) for line in handle]
    assert frames[0]["engine"] == "sharded"
    assert frames[-1]["t"] == "end"
    assert frames[-1]["h"] == session.final_state_hash
    assert any(frame["t"] == "x" for frame in frames)  # barrier index frames


def test_replay_refuses_sharded_traces(tmp_path):
    path = str(tmp_path / "sharded.jsonl")
    run_sharded_scenario(_scenario(steps=80), workers=1, trace_path=path)
    with pytest.raises(ConfigurationError, match="sharded"):
        replay_trace(path)


def test_checkpoint_resume_equals_uninterrupted(tmp_path):
    checkpoint = str(tmp_path / "ck.json")
    straight = run_sharded_scenario(_scenario(), workers=1)
    run_sharded_scenario(_scenario(), workers=2, steps=80, checkpoint_path=checkpoint)
    with open(checkpoint, "r", encoding="utf-8") as handle:
        assert json.load(handle)["format"] == SHARDED_CHECKPOINT_FORMAT
    # Resume with a different worker count than the recording run used.
    resumed = resume_sharded_checkpoint(checkpoint, workers=4, steps=70)
    assert resumed.final_state_hash == straight.final_state_hash
    assert resumed.result.steps == 70


def test_resume_default_steps_finish_the_budget(tmp_path):
    checkpoint = str(tmp_path / "ck.json")
    straight = run_sharded_scenario(_scenario(), workers=1)
    run_sharded_scenario(_scenario(), workers=1, steps=100, checkpoint_path=checkpoint)
    resumed = resume_sharded_checkpoint(checkpoint, workers=1)
    assert resumed.result.steps == 50
    assert resumed.final_state_hash == straight.final_state_hash


def test_classic_resume_entry_point_dispatches_sharded(tmp_path):
    checkpoint = str(tmp_path / "ck.json")
    straight = run_sharded_scenario(_scenario(), workers=1)
    run_sharded_scenario(_scenario(), workers=1, steps=90, checkpoint_path=checkpoint)
    session = resume_from_checkpoint(checkpoint, workers=2)
    assert session.final_state_hash == straight.final_state_hash


def test_cli_run_scenario_sharded_and_resume(tmp_path, capsys):
    spec = str(tmp_path / "spec.json")
    trace = str(tmp_path / "trace.jsonl")
    checkpoint = str(tmp_path / "ck.json")
    with open(spec, "w", encoding="utf-8") as handle:
        handle.write(_scenario().to_json())

    code = cli_main(
        [
            "run-scenario",
            "--spec", spec,
            "--shards", "2",
            "--record", trace,
            "--checkpoint", checkpoint,
            "--steps", "100",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "shards" in out
    assert "final state hash:" in out
    assert os.path.exists(trace) and os.path.exists(checkpoint)

    code = cli_main(["resume", "--checkpoint", checkpoint, "--shards", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "resumed from" in out


def test_cli_shards_flag_defaults_logical_shards(tmp_path, capsys):
    # A spec without a shards field still runs sharded under --shards W,
    # with the documented default of 4 logical shards.
    spec = str(tmp_path / "spec.json")
    scenario = _scenario()
    scenario.shards = 0
    with open(spec, "w", encoding="utf-8") as handle:
        handle.write(scenario.to_json())
    code = cli_main(["run-scenario", "--spec", spec, "--shards", "1", "--steps", "60"])
    out = capsys.readouterr().out
    assert code == 0
    assert "| shards" in out


def test_cli_rejects_bad_shard_flags(tmp_path, capsys):
    spec = str(tmp_path / "spec.json")
    with open(spec, "w", encoding="utf-8") as handle:
        handle.write(_scenario().to_json())
    assert cli_main(["run-scenario", "--spec", spec, "--shards", "0"]) == 2
    assert (
        cli_main(["run-scenario", "--spec", spec.replace("spec", "missing"),
                  "--shards", "2"])
        == 2
    )
    # --barrier-interval without a sharded run is a usage error.
    assert (
        cli_main(["run-scenario", "--name", "uniform-churn", "--barrier-interval", "8"])
        == 2
    )
    capsys.readouterr()


def test_resume_rejects_missing_checkpoint(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert cli_main(["resume", "--checkpoint", missing]) == 2
    capsys.readouterr()
