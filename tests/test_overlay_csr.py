"""CSR invalidation contract tests for :class:`OverlayGraph`.

The walk fast path is served from one shared :class:`CSRLayout` snapshot
(``docs/ARCHITECTURE.md``, "CSR layout and invalidation").  Two properties
carry the whole contract:

* every *effective* mutation — vertex/edge add/remove, weight update —
  bumps ``version``, so walk-side caches keyed on ``(graph id, version)``
  can never serve a stale answer;
* after any mutation sequence, the incrementally maintained snapshot is
  field-for-field identical to a from-scratch :meth:`CSRLayout.build` of
  the same graph (hypothesis stateful test below drives this through
  arbitrary interleavings).

Weight updates must additionally be *in place*: the snapshot object
survives ``set_weight`` (only its cumulative row is re-derived), while any
structural mutation discards it wholesale.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.overlay.graph import OverlayGraph
from repro.walks.csr import CSRLayout

from test_walk_fastpath import OPERATION, apply_operations, seeded_overlay


def assert_csr_matches_fresh_build(graph: OverlayGraph) -> None:
    """The maintained snapshot equals a from-scratch flatten, field by field."""
    maintained = graph.csr()
    fresh = CSRLayout.build(graph)
    assert maintained.vertices == fresh.vertices
    assert list(maintained.indptr) == list(fresh.indptr)
    assert list(maintained.indices) == list(fresh.indices)
    assert list(maintained.inv_degree) == list(fresh.inv_degree)
    assert list(maintained.weights) == list(fresh.weights)
    assert list(maintained.cum_weights()) == list(fresh.cum_weights())
    for vertex in graph.vertices():
        assert maintained.neighbour_tuple(vertex) == tuple(graph.neighbours(vertex))


class TestVersionBumps:
    """Every effective mutation path bumps ``version`` exactly once."""

    def test_add_vertex_bumps(self):
        graph = seeded_overlay()
        before = graph.version
        graph.add_vertex(99, weight=2.0)
        assert graph.version == before + 1

    def test_remove_vertex_bumps(self):
        graph = seeded_overlay()
        before = graph.version
        graph.remove_vertex(0)
        assert graph.version == before + 1

    def test_add_edge_bumps_only_when_effective(self):
        graph = seeded_overlay()
        graph.remove_edge(0, 1)
        before = graph.version
        assert graph.add_edge(0, 1) is True
        assert graph.version == before + 1
        before = graph.version
        assert graph.add_edge(0, 1) is False  # already present: no-op
        assert graph.add_edge(0, 0) is False  # loop: no-op
        assert graph.version == before

    def test_remove_edge_bumps_only_when_effective(self):
        graph = seeded_overlay()
        graph.add_edge(0, 1)
        before = graph.version
        assert graph.remove_edge(0, 1) is True
        assert graph.version == before + 1
        before = graph.version
        assert graph.remove_edge(0, 1) is False  # already absent: no-op
        assert graph.version == before

    def test_set_weight_bumps(self):
        graph = seeded_overlay()
        before = graph.version
        graph.set_weight(0, 7.5)
        assert graph.version == before + 1

    @settings(max_examples=50, deadline=None)
    @given(operations=st.lists(OPERATION, min_size=1, max_size=20), seed=st.integers(0, 2**16))
    def test_version_is_monotone_under_churn(self, operations, seed):
        graph = seeded_overlay(seed=seed % 13)
        history = [graph.version]
        for operation in operations:
            apply_operations(graph, [operation], random.Random(seed))
            history.append(graph.version)
        assert history == sorted(history)


class TestSnapshotLifecycle:
    def test_structural_mutation_discards_snapshot(self):
        graph = seeded_overlay()
        first = graph.csr()
        graph.add_edge(0, 3)
        second = graph.csr()
        assert second is not first
        assert second.structure_version != first.structure_version
        assert_csr_matches_fresh_build(graph)

    def test_set_weight_patches_snapshot_in_place(self):
        graph = seeded_overlay()
        snapshot = graph.csr()
        old_cum = list(snapshot.cum_weights())
        graph.set_weight(2, 42.0)
        assert graph.csr() is snapshot  # same object: O(1) patch, no rebuild
        assert snapshot.weights[snapshot.row_of(2)] == 42.0
        assert snapshot.weights_version == graph.version
        assert list(snapshot.cum_weights()) != old_cum  # cumulative row re-derived
        assert_csr_matches_fresh_build(graph)

    def test_weight_patch_is_visible_through_numpy_views(self):
        np = pytest.importorskip("numpy")
        graph = seeded_overlay()
        views = graph.csr().numpy_views()
        row = graph.csr().row_of(1)
        graph.set_weight(1, 13.0)
        # frombuffer views share memory with the array-module rows.
        assert views["weights"][row] == 13.0
        assert isinstance(views["weights"], np.ndarray)

    def test_direct_version_assignment_refreshes_weights(self):
        # from_snapshot restores `version` by assignment rather than through
        # set_weight; the csr() accessor must notice the stamp mismatch.
        graph = seeded_overlay()
        graph.csr()
        restored = OverlayGraph.from_snapshot(graph.snapshot_state())
        restored.csr()  # build at the restored version
        restored.version += 5  # simulate an out-of-band version jump
        restored._weights.set(0, 99.0)
        assert restored.csr().weights[restored.csr().row_of(0)] == 99.0
        assert restored.csr().weights_version == restored.version

    def test_sample_row_matches_graph_draw(self):
        graph = seeded_overlay(vertices=7, seed=11)
        rng_a, rng_b = random.Random(5), random.Random(5)
        csr = graph.csr()
        for _ in range(200):
            picked = graph.sample_weighted_vertex(rng_a)
            assert picked == csr.vertices[csr.sample_row(rng_b.random())]

    def test_sample_row_error_paths(self):
        empty = OverlayGraph()
        with pytest.raises(ValueError):
            CSRLayout.build(empty).sample_row(0.5)
        zero = OverlayGraph()
        zero.add_vertex(0, weight=0.0)
        with pytest.raises(ValueError):
            zero.csr().sample_row(0.5)


class CSRConsistencyMachine(RuleBasedStateMachine):
    """Arbitrary mutation interleavings never desynchronise the snapshot.

    Half the rules read ``csr()`` (materialising the snapshot so later
    mutations exercise the invalidate/patch paths rather than the cold
    build); the invariant recompares against a from-scratch build after
    every step.
    """

    def __init__(self):
        super().__init__()
        self.graph = OverlayGraph()
        self.next_vertex = 0

    @initialize()
    def seed_graph(self):
        for _ in range(3):
            self.add_vertex()
        self.graph.add_edge(0, 1)
        self.graph.add_edge(1, 2)

    @rule()
    def add_vertex(self):
        self.graph.add_vertex(self.next_vertex, weight=1.0 + self.next_vertex % 5)
        self.next_vertex += 1

    @rule(pick=st.integers(0, 63))
    def remove_vertex(self, pick):
        vertices = self.graph.vertices()
        if len(vertices) > 2:
            self.graph.remove_vertex(vertices[pick % len(vertices)])

    @rule(a=st.integers(0, 63), b=st.integers(0, 63))
    def add_edge(self, a, b):
        vertices = self.graph.vertices()
        if len(vertices) >= 2:
            self.graph.add_edge(vertices[a % len(vertices)], vertices[b % len(vertices)])

    @rule(a=st.integers(0, 63), b=st.integers(0, 63))
    def remove_edge(self, a, b):
        vertices = self.graph.vertices()
        if len(vertices) >= 2:
            self.graph.remove_edge(vertices[a % len(vertices)], vertices[b % len(vertices)])

    @rule(pick=st.integers(0, 63), weight=st.floats(0.5, 50.0))
    def set_weight(self, pick, weight):
        vertices = self.graph.vertices()
        if vertices:
            self.graph.set_weight(vertices[pick % len(vertices)], weight)

    @rule()
    def materialise_snapshot(self):
        self.graph.csr()

    @rule(draw=st.floats(0.0, 0.999))
    def sample(self, draw):
        csr = self.graph.csr()
        if csr.cum_weights() and csr.cum_weights()[-1] > 0:
            row = csr.sample_row(draw)
            assert 0 <= row < len(csr)

    @invariant()
    def snapshot_matches_fresh_build(self):
        assert_csr_matches_fresh_build(self.graph)

    @invariant()
    def aggregates_match(self):
        csr = self.graph.csr()
        assert len(csr) == len(self.graph)
        assert len(csr.indices) == 2 * self.graph.edge_count()


CSRConsistencyMachine.TestCase.settings = settings(max_examples=40, deadline=None)
TestCSRConsistency = CSRConsistencyMachine.TestCase
