"""Graceful interruption: SIGTERM/Ctrl-C leaves a replayable partial trace."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.cli import EXIT_INTERRUPTED, _terminate_as_interrupt, main
from repro.scenarios.probes import Probe
from repro.trace.replay import replay_trace


class TestTerminateAsInterrupt:
    def test_sigterm_raises_keyboard_interrupt_inside_block(self):
        with pytest.raises(KeyboardInterrupt):
            with _terminate_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                # The handler fires at the next bytecode boundary; spin
                # until it does rather than racing signal delivery.
                for _ in range(1_000_000):
                    pass
                pytest.fail("SIGTERM was not routed to KeyboardInterrupt")

    def test_previous_handler_restored_after_block(self):
        sentinel = object()
        calls = []

        def previous(signum, frame):
            calls.append(sentinel)

        original = signal.signal(signal.SIGTERM, previous)
        try:
            with pytest.raises(KeyboardInterrupt):
                with _terminate_as_interrupt():
                    os.kill(os.getpid(), signal.SIGTERM)
                    for _ in range(1_000_000):
                        pass
            assert signal.getsignal(signal.SIGTERM) is previous
        finally:
            signal.signal(signal.SIGTERM, original)

    def test_noop_outside_main_thread(self):
        outcome = {}

        def body():
            try:
                with _terminate_as_interrupt():
                    outcome["entered"] = True
            except Exception as error:  # pragma: no cover - the failure mode
                outcome["error"] = error

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert outcome == {"entered": True}


class _InterruptAfter(Probe):
    """Inline probe that simulates Ctrl-C after N applied events."""

    name = "interrupt-after"
    inline = True

    def __init__(self, after: int) -> None:
        self.after = after
        self.seen = 0

    def on_step(self, engine, report, step_index: int) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt


class TestInterruptedRecordingRun:
    def test_interrupted_record_run_leaves_replayable_partial_trace(
        self, tmp_path, monkeypatch, capsys
    ):
        # Interrupt the run mid-recording, exactly as a Ctrl-C between two
        # applied events would: the CLI must exit 130 and the partial trace
        # must have the crashed-run shape — readable and replayable up to
        # its last complete frame.
        import repro.cli as cli
        from repro.trace.session import record_scenario as real_record

        interrupter = _InterruptAfter(after=7)

        def interrupting_record(scenario, **kwargs):
            kwargs["probes"] = list(kwargs.get("probes", ())) + [interrupter]
            return real_record(scenario, **kwargs)

        monkeypatch.setattr(cli, "record_scenario", interrupting_record)
        trace = str(tmp_path / "interrupted.jsonl")
        code = main(
            [
                "run-scenario",
                "--name",
                "uniform-churn",
                "--steps",
                "200",
                "--record",
                trace,
                "--index-every",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in captured.err
        assert "partial trace flushed" in captured.err
        assert interrupter.seen == 7

        report = replay_trace(trace)
        assert report.ok, report.divergence
        assert 0 < report.events_applied < 200
        assert report.hash_checks >= 1
        # Crashed-run shape: no end frame was written.
        assert report.recorded_final_hash is None

    def test_completed_run_still_exits_zero(self, tmp_path, capsys):
        trace = str(tmp_path / "complete.jsonl")
        code = main(
            [
                "run-scenario",
                "--name",
                "uniform-churn",
                "--steps",
                "10",
                "--record",
                trace,
            ]
        )
        capsys.readouterr()
        assert code == 0
        report = replay_trace(trace)
        assert report.ok
        assert report.recorded_final_hash is not None
