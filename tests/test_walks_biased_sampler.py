"""Unit tests for the biased CTRW, mixing estimation and the cluster sampler."""

from __future__ import annotations

import random

import pytest

from repro.errors import WalkError
from repro.walks.biased import BiasedClusterWalk
from repro.walks.interface import MappingGraph
from repro.walks.mixing import (
    empirical_distribution,
    estimate_mixing_time,
    total_variation_distance,
    uniform_distribution,
)
from repro.walks.sampler import ClusterSampler, WalkMode


def weighted_cycle(size: int, heavy_vertex: int = 0, heavy_weight: float = 4.0) -> MappingGraph:
    adjacency = {i: [(i - 1) % size, (i + 1) % size] for i in range(size)}
    weights = {i: (heavy_weight if i == heavy_vertex else 1.0) for i in range(size)}
    return MappingGraph(adjacency, weights)


class TestBiasedWalk:
    def test_rejects_bad_parameters(self):
        graph = weighted_cycle(4)
        with pytest.raises(WalkError):
            BiasedClusterWalk(graph, random.Random(0), segment_duration=0.0)
        with pytest.raises(WalkError):
            BiasedClusterWalk(graph, random.Random(0), segment_duration=1.0, max_restarts=0)

    def test_unknown_start_rejected(self):
        graph = weighted_cycle(4)
        walk = BiasedClusterWalk(graph, random.Random(0), segment_duration=1.0)
        with pytest.raises(WalkError):
            walk.run(99)

    def test_outcome_bookkeeping(self):
        graph = weighted_cycle(6)
        walk = BiasedClusterWalk(graph, random.Random(5), segment_duration=4.0)
        outcome = walk.run(0)
        assert outcome.restarts >= 1
        assert outcome.acceptance_tests == outcome.restarts
        assert len(outcome.visited) == outcome.restarts
        assert outcome.cluster in graph.vertices()

    def test_truncation_flag_when_cap_hit(self):
        """With max_restarts=1 and a tiny acceptance probability the walk truncates."""
        adjacency = {0: [1], 1: [0]}
        weights = {0: 1.0, 1: 1000.0}
        graph = MappingGraph(adjacency, weights)
        walk = BiasedClusterWalk(graph, random.Random(3), segment_duration=1.0, max_restarts=1)
        truncated_seen = False
        for _ in range(50):
            outcome = walk.run(0)
            if outcome.truncated:
                truncated_seen = True
                break
        assert truncated_seen

    def test_endpoint_distribution_proportional_to_weight(self):
        """The accepted endpoint follows |C| / n, the paper's target distribution."""
        graph = weighted_cycle(5, heavy_vertex=2, heavy_weight=3.0)
        walk = BiasedClusterWalk(graph, random.Random(17), segment_duration=30.0)
        counts = {}
        samples = 3000
        for _ in range(samples):
            outcome = walk.run(0)
            counts[outcome.cluster] = counts.get(outcome.cluster, 0) + 1
        total_weight = graph.total_weight()
        for vertex in graph.vertices():
            expected = graph.weight(vertex) / total_weight
            observed = counts.get(vertex, 0) / samples
            assert observed == pytest.approx(expected, abs=0.05)

    def test_expected_restarts(self):
        graph = weighted_cycle(4, heavy_vertex=0, heavy_weight=7.0)
        walk = BiasedClusterWalk(graph, random.Random(0), segment_duration=1.0)
        expected = walk.expected_restarts()
        assert expected == pytest.approx(7.0 / ((7 + 3) / 4))


class TestMixingHelpers:
    def test_total_variation_of_identical_distributions(self):
        dist = {0: 0.5, 1: 0.5}
        assert total_variation_distance(dist, dist) == 0.0

    def test_total_variation_of_disjoint_distributions(self):
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_empirical_distribution_normalises(self):
        dist = empirical_distribution({0: 3, 1: 1})
        assert dist[0] == pytest.approx(0.75)

    def test_empirical_distribution_rejects_empty(self):
        with pytest.raises(WalkError):
            empirical_distribution({})

    def test_uniform_distribution(self):
        graph = weighted_cycle(4)
        dist = uniform_distribution(graph)
        assert all(value == pytest.approx(0.25) for value in dist.values())

    def test_estimate_mixing_time_monotone_graph(self):
        graph = weighted_cycle(6)
        duration = estimate_mixing_time(
            graph,
            random.Random(2),
            start=0,
            threshold=0.25,
            samples_per_duration=300,
            initial_duration=1.0,
            max_duration=64.0,
        )
        assert 1.0 <= duration <= 64.0

    def test_estimate_mixing_time_rejects_bad_threshold(self):
        graph = weighted_cycle(6)
        with pytest.raises(WalkError):
            estimate_mixing_time(graph, random.Random(2), start=0, threshold=0.0)


class TestClusterSampler:
    def test_simulated_and_oracle_modes_agree_in_distribution(self):
        graph = weighted_cycle(5, heavy_vertex=1, heavy_weight=4.0)
        simulated = ClusterSampler(
            graph, random.Random(3), segment_duration=25.0, mode=WalkMode.SIMULATED
        )
        oracle = ClusterSampler(
            graph, random.Random(4), segment_duration=25.0, mode=WalkMode.ORACLE
        )
        samples = 1500
        counts_sim = {}
        counts_ora = {}
        for _ in range(samples):
            sim_cluster = simulated.sample(0).cluster
            ora_cluster = oracle.sample(0).cluster
            counts_sim[sim_cluster] = counts_sim.get(sim_cluster, 0) + 1
            counts_ora[ora_cluster] = counts_ora.get(ora_cluster, 0) + 1
        for vertex in graph.vertices():
            sim_fraction = counts_sim.get(vertex, 0) / samples
            ora_fraction = counts_ora.get(vertex, 0) / samples
            assert sim_fraction == pytest.approx(ora_fraction, abs=0.07)

    def test_oracle_mode_reports_positive_effort(self):
        graph = weighted_cycle(5)
        sampler = ClusterSampler(
            graph, random.Random(3), segment_duration=10.0, mode=WalkMode.ORACLE
        )
        outcome = sampler.sample(0)
        assert outcome.hops >= 1
        assert outcome.restarts >= 1
        assert outcome.mode is WalkMode.ORACLE

    def test_simulated_mode_flag(self):
        graph = weighted_cycle(5)
        sampler = ClusterSampler(
            graph, random.Random(3), segment_duration=5.0, mode=WalkMode.SIMULATED
        )
        assert sampler.sample(0).mode is WalkMode.SIMULATED

    def test_with_mode_switches(self):
        graph = weighted_cycle(5)
        sampler = ClusterSampler(graph, random.Random(3), segment_duration=5.0)
        assert sampler.with_mode(WalkMode.ORACLE).mode is WalkMode.ORACLE

    def test_oracle_rejects_empty_graph(self):
        graph = MappingGraph({})
        sampler = ClusterSampler(
            graph, random.Random(3), segment_duration=5.0, mode=WalkMode.ORACLE
        )
        with pytest.raises(WalkError):
            sampler.sample(0)
