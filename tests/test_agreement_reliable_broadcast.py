"""Unit tests for the Bracha-style reliable broadcast."""

from __future__ import annotations

import random

import pytest

from repro.agreement.reliable_broadcast import ReliableBroadcast


class TestHonestSender:
    def test_all_honest_deliver_the_value(self):
        rb = ReliableBroadcast(random.Random(0))
        outcome = rb.broadcast(range(7), sender=0, value="v", byzantine=())
        assert set(outcome.delivered) == set(range(7))
        assert outcome.consistent
        assert outcome.delivered_value == "v"
        assert outcome.messages > 0
        assert outcome.rounds <= 12

    def test_delivery_with_silent_byzantine_members(self):
        """n = 10, f = 3 (n > 3f): honest nodes still deliver despite silence."""
        rb = ReliableBroadcast(random.Random(1))
        outcome = rb.broadcast(range(10), sender=0, value=42, byzantine={7, 8, 9})
        honest = set(range(7))
        assert honest.issubset(set(outcome.delivered))
        assert outcome.consistent
        assert outcome.delivered_value == 42

    def test_sender_must_participate(self):
        rb = ReliableBroadcast(random.Random(2))
        with pytest.raises(ValueError):
            rb.broadcast(range(5), sender=99, value=1)

    def test_message_cost_is_quadratic(self):
        rb = ReliableBroadcast(random.Random(3))
        small = rb.broadcast(range(6), sender=0, value=1).messages
        large = rb.broadcast(range(12), sender=0, value=1).messages
        # Doubling n should roughly quadruple the cost (echo + ready rounds).
        assert large > 3 * small


class TestByzantineSender:
    def test_equivocating_sender_never_splits_honest_nodes(self):
        """Consistency: whatever subset delivers, it delivers a single value."""
        for seed in range(6):
            rb = ReliableBroadcast(random.Random(seed))
            outcome = rb.broadcast(
                range(10),
                sender=0,
                value="real",
                byzantine={0, 5, 9},
            )
            assert outcome.consistent

    def test_custom_sender_strategy_silence(self):
        """A completely silent Byzantine sender leads to no delivery at all."""
        rb = ReliableBroadcast(random.Random(4))
        outcome = rb.broadcast(
            range(7),
            sender=0,
            value="never sent",
            byzantine={0},
            sender_strategy=lambda receiver: None,
        )
        assert outcome.delivered == {}
        assert outcome.delivered_value is None
        assert outcome.consistent  # vacuously

    def test_partial_equivocation_with_small_f(self):
        """With a single Byzantine sender out of 10, honest nodes either agree or abstain."""
        rb = ReliableBroadcast(random.Random(5))
        outcome = rb.broadcast(range(10), sender=0, value="x", byzantine={0})
        assert outcome.consistent
        # With f = 1 and the default equivocation (half/half) neither value can
        # collect an echo quorum of > (n + f) / 2 = 5.5 from 9 honest echoes split
        # 5/4, so delivery may or may not happen -- but never inconsistently.
        values = set(outcome.delivered.values())
        assert len(values) <= 1
