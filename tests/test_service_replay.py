"""Recorded live-service sessions replay divergence-free.

The determinism contract under test: every churn event a live session
applies is published to the trace exactly as a batch run's events are, and
every read (sample/broadcast, anonymous-leave pick) draws from the private
service RNG — so re-applying the recorded events to an engine rebuilt from
the trace header reproduces the identical state, hash for hash.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.service import (
    LiveEngineSession,
    ProtocolError,
    ServiceFrontend,
    encode_frame,
    live_scenario,
)
from repro.trace.hashing import state_hash
from repro.trace.replay import replay_trace

_trace_counter = itertools.count()


def fresh_session(tmp_path, seed: int = 21, record: bool = True):
    """A small live session, optionally recording to a unique trace path."""
    session = LiveEngineSession(
        live_scenario(seed=seed, initial_size=90, max_size=256)
    )
    path = None
    if record:
        path = str(tmp_path / f"live-{next(_trace_counter)}.jsonl")
        session.attach_trace(path, index_every=5)
    return session, path


def run_ops(session: LiveEngineSession, ops) -> int:
    """Drive a mixed request sequence; engine-rejected requests are fine."""
    executed = 0
    for index, op in enumerate(ops):
        frame = {"op": op, "id": index}
        if op == "broadcast":
            frame["payload"] = f"p{index}"
        try:
            session.execute(frame)
            executed += 1
        except ProtocolError:
            # Size-bound rejections are part of normal service operation
            # and must not affect the recorded trace.
            pass
    return executed


class TestRecordedSessionReplays:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ops=st.lists(
            st.sampled_from(["join", "leave", "sample", "broadcast", "status"]),
            min_size=1,
            max_size=40,
        ),
        seed=st.integers(min_value=1, max_value=50),
    )
    def test_any_request_sequence_replays_divergence_free(
        self, tmp_path, ops, seed
    ):
        session, path = fresh_session(tmp_path, seed=seed)
        try:
            run_ops(session, ops)
        finally:
            session.close()
        report = replay_trace(path)
        assert report.ok, report.divergence
        assert report.events_applied == session.events_applied
        assert report.final_hash == state_hash(session.engine)

    def test_interleaved_reads_do_not_perturb_replay(self, tmp_path):
        # Two sessions applying the same churn but wildly different read
        # traffic must record byte-identical event streams.
        quiet, quiet_path = fresh_session(tmp_path, seed=33)
        noisy, noisy_path = fresh_session(tmp_path, seed=33)
        try:
            for index in range(10):
                quiet.execute({"op": "join", "id": index})
                for burst in range(5):
                    noisy.execute({"op": "sample", "id": f"s{index}-{burst}"})
                noisy.execute({"op": "broadcast", "id": f"b{index}", "payload": "x"})
                noisy.execute({"op": "join", "id": index})
        finally:
            quiet.close()
            noisy.close()
        assert state_hash(quiet.engine) == state_hash(noisy.engine)
        assert replay_trace(quiet_path).final_hash == replay_trace(noisy_path).final_hash

    def test_crashed_shape_trace_still_replays(self, tmp_path):
        session, path = fresh_session(tmp_path, seed=8)
        run_ops(session, ["join", "leave", "join", "sample", "join"])
        # The crash path: buffered frames are flushed, no end frame.
        session.close(ok=False)
        frames = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert frames[0]["t"] == "header"
        assert all(frame["t"] != "end" for frame in frames)
        report = replay_trace(path)
        assert report.ok, report.divergence
        assert report.events_applied == session.events_applied


class TestServedSessionReplays:
    def test_tcp_served_session_records_and_replays(self, tmp_path):
        path = str(tmp_path / "served.jsonl")

        async def scenario():
            session = LiveEngineSession(
                live_scenario(seed=4, initial_size=90, max_size=256)
            )
            session.attach_trace(path, index_every=10)
            frontend = ServiceFrontend(session, port=0)
            await frontend.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", frontend.port)
            ops = (["join"] * 8 + ["sample"] * 6 + ["leave"] * 3 + ["broadcast"]) * 2
            for index, op in enumerate(ops):
                frame = {"op": op, "id": index}
                if op == "broadcast":
                    frame["payload"] = "hello"
                writer.write(encode_frame(frame))
            await writer.drain()
            responses = []
            for _ in ops:
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                responses.append(json.loads(line))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            await frontend.stop()
            return session, responses

        session, responses = asyncio.run(scenario())
        assert all(response["ok"] for response in responses)
        assert session.events_applied == 22  # 8 joins + 3 leaves, twice
        report = replay_trace(path)
        assert report.ok, report.divergence
        assert report.events_applied == session.events_applied
        assert report.final_hash == state_hash(session.engine)
