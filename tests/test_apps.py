"""Unit tests for the application layer (broadcast, sampling, aggregation, agreement)."""

from __future__ import annotations

import random

import pytest

from repro import NowEngine, default_parameters
from repro.apps import (
    AggregationService,
    ClusterAgreementService,
    ClusteredBroadcast,
    SamplingService,
)
from repro.baselines import SingleClusterBaseline
from repro.network.node import NodeRole


@pytest.fixture(scope="module")
def app_engine():
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    return NowEngine.bootstrap(params, initial_size=160, byzantine_fraction=0.1, seed=21)


class TestClusteredBroadcast:
    def test_reaches_every_cluster(self, app_engine):
        broadcast = ClusteredBroadcast(app_engine)
        report = broadcast.broadcast("payload")
        assert report.clusters_reached == set(app_engine.state.clusters.cluster_ids())
        assert report.coverage(app_engine.cluster_count) == pytest.approx(1.0)
        assert report.nodes_reached == app_engine.network_size
        assert report.rounds >= 1

    def test_cost_beats_naive_quadratic(self, app_engine):
        broadcast = ClusteredBroadcast(app_engine)
        report = broadcast.broadcast("payload")
        naive = SingleClusterBaseline().broadcast_messages(app_engine.network_size)
        assert report.messages < naive

    def test_explicit_origin(self, app_engine):
        origin = app_engine.state.clusters.cluster_ids()[0]
        report = ClusteredBroadcast(app_engine).broadcast("x", origin_cluster=origin)
        assert report.origin_cluster == origin

    def test_metrics_charged(self, app_engine):
        before = app_engine.metrics.scope("app-broadcast").messages
        ClusteredBroadcast(app_engine).broadcast("x")
        assert app_engine.metrics.scope("app-broadcast").messages > before


class TestSamplingService:
    def test_sample_cost_is_polylog_bounded(self, app_engine):
        """Per-sample cost is bounded by a small multiple of log^5 N (paper §3.1).

        At these small scales ``log^5 N`` exceeds ``n^2`` — the paper's gain
        over the naive approach is asymptotic — so the meaningful check is
        the polylog bound itself, not a comparison against ``n^2``.
        """
        import math

        service = SamplingService(app_engine)
        report = service.sample()
        log_n = math.log2(app_engine.parameters.max_size)
        assert report.messages > 0
        assert report.messages < 10 * log_n ** 5

    def test_sampled_nodes_are_active(self, app_engine):
        service = SamplingService(app_engine)
        active = set(app_engine.active_nodes())
        for report in service.sample_many(25):
            assert report.node_id in active
            assert report.cluster_id in app_engine.state.clusters

    def test_byzantine_sample_fraction_near_tau(self, app_engine):
        service = SamplingService(app_engine)
        samples = service.sample_many(300)
        fraction = SamplingService.byzantine_sample_fraction(samples)
        assert fraction == pytest.approx(0.1, abs=0.07)

    def test_distribution_helpers(self, app_engine):
        service = SamplingService(app_engine)
        samples = service.sample_many(50)
        distribution = SamplingService.empirical_node_distribution(samples)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert SamplingService.average_cost(samples) > 0
        assert SamplingService.average_cost([]) == 0.0
        assert SamplingService.byzantine_sample_fraction([]) == 0.0


class TestAggregationService:
    def test_count_active_nodes_matches_honest_count(self, app_engine):
        service = AggregationService(app_engine)
        report = service.count_active_nodes()
        honest_count = len(app_engine.active_nodes()) - len(
            app_engine.state.nodes.active_byzantine()
        )
        assert report.exact_honest_value == pytest.approx(honest_count)
        # With every cluster honest-majority the aggregate equals the honest count.
        assert report.value == pytest.approx(honest_count)
        assert report.relative_error == pytest.approx(0.0)
        assert report.messages > 0

    def test_aggregate_sum_of_custom_values(self, app_engine):
        service = AggregationService(app_engine)
        values = {node_id: 2.0 for node_id in app_engine.active_nodes()}
        report = service.aggregate_sum(values)
        honest_count = len(app_engine.active_nodes()) - len(
            app_engine.state.nodes.active_byzantine()
        )
        assert report.value == pytest.approx(2.0 * honest_count)
        assert report.clusters_included == set(app_engine.state.clusters.cluster_ids())

    def test_byzantine_reports_ignored_in_honest_clusters(self, app_engine):
        service = AggregationService(app_engine)
        values = {node_id: 1.0 for node_id in app_engine.active_nodes()}
        poisoned = service.aggregate_sum(values, byzantine_value=10_000.0)
        assert poisoned.value == pytest.approx(poisoned.exact_honest_value)


class TestClusterAgreementService:
    def test_cluster_level_agreement_succeeds(self, app_engine):
        service = ClusterAgreementService(app_engine)
        report = service.decide()
        assert report.succeeded
        assert report.compromised_clusters == []
        assert report.logical_messages > 0
        assert report.physical_messages > report.logical_messages

    def test_explicit_inputs_respected(self, app_engine):
        service = ClusterAgreementService(app_engine)
        inputs = {cluster_id: 1 for cluster_id in app_engine.state.clusters.cluster_ids()}
        report = service.decide(cluster_inputs=inputs)
        assert report.decided_value == 1

    def test_committee_mode_uses_fewer_clusters(self, app_engine):
        service = ClusterAgreementService(app_engine)
        full = service.decide()
        committee = service.committee_decide(committee_size=3)
        assert len(committee.participating_clusters) == 3
        assert committee.logical_messages <= full.logical_messages
