"""Unit tests for the adversary models."""

from __future__ import annotations

import random

import pytest

from repro import NowEngine, default_parameters
from repro.adversary import (
    AdaptiveCorruptionAdversary,
    AdversaryContext,
    JoinLeaveAttack,
    ObliviousChurnAdversary,
    TargetedDosAdversary,
)
from repro.baselines import NoShuffleEngine
from repro.core.events import ChurnKind
from repro.network.node import NodeRole


@pytest.fixture
def attack_engine():
    params = default_parameters(max_size=1024, k=2.0, tau=0.15, epsilon=0.05)
    return NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=0.15, seed=5)


class TestAdversaryContext:
    def test_full_knowledge_views(self, attack_engine):
        context = AdversaryContext(attack_engine)
        cluster_ids = context.cluster_ids()
        assert cluster_ids == attack_engine.state.clusters.cluster_ids()
        member = context.cluster_members(cluster_ids[0])[0]
        assert context.cluster_of(member) == cluster_ids[0]
        assert 0.0 <= context.byzantine_fraction(cluster_ids[0]) <= 1.0
        assert context.network_size() == attack_engine.network_size
        assert context.global_byzantine_fraction() == pytest.approx(0.15, abs=0.02)

    def test_controlled_and_honest_partition(self, attack_engine):
        context = AdversaryContext(attack_engine)
        controlled = context.controlled_nodes()
        honest = set(context.honest_nodes())
        assert controlled.isdisjoint(honest)
        assert len(controlled) + len(honest) == attack_engine.network_size

    def test_controlled_in_cluster(self, attack_engine):
        context = AdversaryContext(attack_engine)
        cluster_id = context.cluster_ids()[0]
        members = set(context.cluster_members(cluster_id))
        for node_id in context.controlled_in_cluster(cluster_id):
            assert node_id in members
            assert node_id in context.controlled_nodes()


class TestJoinLeaveAttack:
    def test_alternates_leave_and_rejoin(self, attack_engine):
        target = attack_engine.state.clusters.cluster_ids()[0]
        attack = JoinLeaveAttack(random.Random(1), target_cluster=target)
        context = AdversaryContext(attack_engine)
        first = attack.next_event(context)
        assert first.kind is ChurnKind.LEAVE
        attack_engine.apply_event(first)
        second = attack.next_event(context)
        assert second.kind is ChurnKind.JOIN
        assert second.role is NodeRole.BYZANTINE
        assert second.contact_cluster == target
        assert second.node_id == first.node_id  # the same controlled node re-joins

    def test_run_does_not_capture_now_cluster(self, attack_engine):
        """NOW's shuffling keeps the targeted cluster honest-majority."""
        target = attack_engine.state.clusters.cluster_ids()[0]
        attack = JoinLeaveAttack(random.Random(1), target_cluster=target)
        attack.run(attack_engine, steps=60)
        if target in attack_engine.state.clusters:
            assert attack_engine.state.cluster_byzantine_fraction(target) < 0.5

    def test_captures_no_shuffle_baseline(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.15, epsilon=0.05)
        baseline = NoShuffleEngine.bootstrap(
            params, initial_size=120, byzantine_fraction=0.15, seed=5
        )
        target = baseline.state.clusters.cluster_ids()[0]
        attack = JoinLeaveAttack(random.Random(1), target_cluster=target)
        attack.run(baseline, steps=120)
        assert baseline.worst_cluster_fraction() >= 1.0 / 3.0

    def test_idles_when_no_controlled_nodes(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
        engine = NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=0.0, seed=5)
        attack = JoinLeaveAttack(random.Random(1))
        assert attack.next_event(AdversaryContext(engine)) is None


class TestTargetedDos:
    def test_forces_honest_departures_from_target(self, attack_engine):
        target = attack_engine.state.clusters.cluster_ids()[0]
        adversary = TargetedDosAdversary(
            random.Random(2), target_cluster=target, rejoin_victims=False
        )
        context = AdversaryContext(attack_engine)
        event = adversary.next_event(context)
        assert event.kind is ChurnKind.LEAVE
        assert not attack_engine.state.nodes.is_byzantine(event.node_id)
        assert attack_engine.state.clusters.cluster_of(event.node_id) == target

    def test_run_keeps_now_safe(self, attack_engine):
        adversary = TargetedDosAdversary(random.Random(2))
        adversary.run(attack_engine, steps=40)
        assert attack_engine.worst_cluster_fraction() < 0.5

    def test_name(self):
        assert TargetedDosAdversary(random.Random(0)).name() == "TargetedDosAdversary"


class TestObliviousChurn:
    def test_emits_leaves_then_rejoins(self, attack_engine):
        adversary = ObliviousChurnAdversary(random.Random(3), join_probability=1.0)
        context = AdversaryContext(attack_engine)
        first = adversary.next_event(context)
        assert first.kind is ChurnKind.LEAVE
        attack_engine.apply_event(first)
        second = adversary.next_event(context)
        assert second.kind is ChurnKind.JOIN

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ObliviousChurnAdversary(random.Random(3), join_probability=2.0)


class TestAdaptiveCorruption:
    def test_grows_global_fraction(self, attack_engine):
        adversary = AdaptiveCorruptionAdversary(random.Random(4))
        before = attack_engine.state.nodes.byzantine_fraction()
        adversary.run(attack_engine, steps=30)
        after = attack_engine.state.nodes.byzantine_fraction()
        assert after > before
