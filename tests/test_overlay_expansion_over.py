"""Unit tests for expansion measurement and the OVER maintenance protocol."""

from __future__ import annotations

import random

import pytest

from repro.errors import UnknownClusterError
from repro.overlay.erdos_renyi import erdos_renyi_overlay
from repro.overlay.expansion import (
    analyse_expansion,
    cheeger_bounds,
    spectral_gap,
    sweep_cut_isoperimetric,
)
from repro.overlay.graph import OverlayGraph
from repro.overlay.over import OverOverlay
from repro.params import ProtocolParameters

try:
    import numpy as _np
except ImportError:
    _np = None

requires_numpy = pytest.mark.skipif(
    _np is None, reason="requires numpy (spectral / least-squares analysis)"
)


def complete_overlay(size: int) -> OverlayGraph:
    return erdos_renyi_overlay(range(size), edge_probability=1.0, rng=random.Random(0))


def path_overlay(size: int) -> OverlayGraph:
    graph = OverlayGraph()
    for index in range(size):
        graph.add_vertex(index)
    for index in range(size - 1):
        graph.add_edge(index, index + 1)
    return graph


def disconnected_overlay() -> OverlayGraph:
    graph = OverlayGraph()
    for index in range(4):
        graph.add_vertex(index)
    graph.add_edge(0, 1)
    graph.add_edge(2, 3)
    return graph


@requires_numpy
class TestExpansionMeasures:
    def test_spectral_gap_complete_graph_is_large(self):
        assert spectral_gap(complete_overlay(8)) > 0.9

    def test_spectral_gap_disconnected_is_zero(self):
        assert spectral_gap(disconnected_overlay()) == pytest.approx(0.0, abs=1e-9)

    def test_spectral_gap_path_smaller_than_complete(self):
        assert spectral_gap(path_overlay(8)) < spectral_gap(complete_overlay(8))

    def test_cheeger_bounds_order(self):
        lower, upper = cheeger_bounds(complete_overlay(8))
        assert 0.0 <= lower <= upper

    def test_sweep_cut_on_complete_graph(self):
        # Any balanced cut of K_n has expansion ~ n/2.
        value = sweep_cut_isoperimetric(complete_overlay(8))
        assert value >= 4.0 - 1e-9

    def test_sweep_cut_on_path_is_small(self):
        value = sweep_cut_isoperimetric(path_overlay(10))
        assert value <= 0.5  # cutting the middle edge: 1 / 5

    def test_sweep_cut_disconnected_is_zero(self):
        assert sweep_cut_isoperimetric(disconnected_overlay()) == 0.0

    def test_analyse_expansion_report_fields(self):
        report = analyse_expansion(complete_overlay(6))
        assert report.vertex_count == 6
        assert report.edge_count == 15
        assert report.max_degree == 5
        assert report.min_degree == 5
        assert report.connected
        assert report.meets_degree_bound(5)
        assert not report.meets_degree_bound(4)
        assert report.meets_expansion_target(1.0)

    def test_analyse_expansion_tiny_graph(self):
        graph = OverlayGraph()
        graph.add_vertex(0)
        report = analyse_expansion(graph)
        assert report.vertex_count == 1
        assert report.spectral_gap == 0.0


class TestOverOverlay:
    def params(self, max_size=1024):
        return ProtocolParameters(max_size=max_size, k=2.0, alpha=0.1, tau=0.1, epsilon=0.05)

    def build(self, cluster_count=20, seed=3):
        over = OverOverlay(self.params(), random.Random(seed))
        over.bootstrap(list(range(cluster_count)), weights=[20.0] * cluster_count)
        return over

    def test_bootstrap_connected(self):
        over = self.build()
        assert over.graph.is_connected()
        assert len(over.graph) == 20

    def test_bootstrap_respects_degree_cap(self):
        over = self.build(cluster_count=30)
        assert over.graph.max_degree() <= self.params().overlay_degree_cap

    def test_add_vertex_connects_to_target_degree(self):
        over = self.build()
        change = over.add_vertex(100, weight=20.0, anchor=0)
        assert 100 in over.graph
        assert over.graph.degree(100) >= 1
        assert change.operation == "add"
        assert all(100 in edge for edge in change.edges_added)
        assert over.graph.is_connected()

    def test_add_vertex_to_empty_overlay(self):
        over = OverOverlay(self.params(), random.Random(1))
        change = over.add_vertex(0, weight=5.0)
        assert change.edges_added == []
        assert 0 in over.graph

    def test_remove_vertex_patches_and_stays_connected(self):
        over = self.build()
        change = over.remove_vertex(5)
        assert 5 not in over.graph
        assert change.operation == "remove"
        assert over.graph.is_connected()
        # The removed vertex's edges are reported as removed.
        assert any(5 in edge for edge in change.edges_removed)

    def test_remove_unknown_vertex_raises(self):
        over = self.build()
        with pytest.raises(UnknownClusterError):
            over.remove_vertex(999)

    def test_degree_regulation_after_many_adds(self):
        over = self.build(cluster_count=10)
        for new_id in range(100, 130):
            over.add_vertex(new_id, weight=20.0, anchor=0)
        assert over.graph.max_degree() <= self.params().overlay_degree_cap

    def test_update_weight(self):
        over = self.build()
        over.update_weight(3, 55.0)
        assert over.graph.weight(3) == 55.0

    @requires_numpy
    def test_long_add_remove_sequence_preserves_properties(self):
        """Property 1 & 2 style check under a churn of vertex additions/removals."""
        rng = random.Random(11)
        over = self.build(cluster_count=24, seed=11)
        next_id = 1000
        for _ in range(60):
            if rng.random() < 0.5 and len(over.graph) > 8:
                victim = rng.choice(list(over.graph.vertices()))
                over.remove_vertex(victim)
            else:
                over.add_vertex(next_id, weight=20.0, anchor=rng.choice(list(over.graph.vertices())))
                next_id += 1
        assert over.graph.is_connected()
        assert over.graph.max_degree() <= self.params().overlay_degree_cap
        report = analyse_expansion(over.graph)
        assert report.spectral_gap > 0.05
