"""Tests for the streaming observation pipeline (bus, buffered probes).

The load-bearing property: **buffered observation is measurement-identical
and trajectory-identical to inline observation** — same RunResult metrics,
same probe outputs bit for bit, same final engine state hash — in both walk
modes.  Probes draw no randomness and the bus only batches *when* a probe
sees an observation, never *what* it sees.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scenario
from repro.analysis.statistics import RunningSummary, summarize_values
from repro.errors import ConfigurationError
from repro.scenarios import (
    CallbackProbe,
    CorruptionTrajectoryProbe,
    CostLedgerProbe,
    ObservationBus,
    SimulationRunner,
    SizeTrajectoryProbe,
    StepRecord,
)
from repro.trace import state_hash
from repro.workloads import UniformChurn

PARAMS = dict(max_size=1024, initial_size=100, tau=0.15, k=2.0)


def small_scenario(seed=7, **overrides) -> Scenario:
    fields = dict(PARAMS)
    fields.update(overrides)
    return Scenario(name=fields.pop("name", "bus-test"), seed=seed, **fields)


def standard_probes(buffered: bool):
    return [
        CorruptionTrajectoryProbe(inline=not buffered),
        SizeTrajectoryProbe(inline=not buffered),
        CostLedgerProbe(),  # always buffered; measurement is record-only
        CallbackProbe(
            lambda _engine, record_or_report, _step: record_or_report.network_size,
            every=3,
            name="sampled-size",
            inline=not buffered,
        ),
    ]


def run_with(buffered: bool, probe_buffer: int, seed: int, steps: int, **overrides):
    scenario = small_scenario(seed=seed, steps=steps, **overrides)
    engine = scenario.build_engine()
    probes = standard_probes(buffered)
    runner = scenario.build_runner(probes=probes, engine=engine, probe_buffer=probe_buffer)
    result = runner.run(steps)
    return engine, probes, result


class TestBufferedInlineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        steps=st.integers(5, 60),
        probe_buffer=st.integers(1, 97),
        walk_mode=st.sampled_from(["oracle", "simulated"]),
    )
    def test_buffered_equals_inline_bit_for_bit(self, seed, steps, probe_buffer, walk_mode):
        options = {"engine_options": {"walk_mode": walk_mode}}
        engine_a, probes_a, result_a = run_with(False, 1, seed, steps, **options)
        engine_b, probes_b, result_b = run_with(True, probe_buffer, seed, steps, **options)

        # Trajectory-identical: the observation path never perturbs the run.
        assert state_hash(engine_a) == state_hash(engine_b)
        # Measurement-identical: RunResult metrics agree exactly.
        assert result_a.events == result_b.events
        assert result_a.final_size == result_b.final_size
        assert result_a.final_worst_fraction == result_b.final_worst_fraction
        assert result_a.peak_worst_fraction == result_b.peak_worst_fraction
        # Probe outputs are bit-identical.
        for probe_a, probe_b in zip(probes_a, probes_b):
            assert probe_a.result() == probe_b.result(), probe_a.name
        summary_a = probes_a[0].summary()
        summary_b = probes_b[0].summary()
        assert summary_a == summary_b

    def test_adversarial_scenario_equivalence(self):
        options = dict(
            tau=0.2,
            adversary={"kind": "join_leave", "target_cluster": "first"},
            adversary_weight=0.5,
        )
        engine_a, probes_a, _ = run_with(False, 1, 13, 50, **options)
        engine_b, probes_b, _ = run_with(True, 17, 13, 50, **options)
        assert state_hash(engine_a) == state_hash(engine_b)
        for probe_a, probe_b in zip(probes_a, probes_b):
            assert probe_a.result() == probe_b.result()


class TestObservationBus:
    def test_probes_split_into_lanes(self):
        engine = small_scenario().build_engine()
        inline_probe = CorruptionTrajectoryProbe(inline=True)
        buffered_probe = SizeTrajectoryProbe()
        target_probe = CorruptionTrajectoryProbe(target_cluster=0)
        target_probe.name = "target"
        bus = ObservationBus(engine, [inline_probe, buffered_probe, target_probe])
        assert inline_probe in bus.inline_probes
        assert target_probe in bus.inline_probes  # per-event engine read forces inline
        assert buffered_probe in bus.buffered_probes

    def test_batch_cadence_and_final_flush(self):
        scenario = small_scenario(steps=25)
        engine = scenario.build_engine()

        class BatchSpy(CostLedgerProbe):
            name = "spy"

            def __init__(self):
                super().__init__()
                self.batch_sizes = []

            def on_records(self, engine, records):
                self.batch_sizes.append(len(records))
                super().on_records(engine, records)

        spy = BatchSpy()
        runner = scenario.build_runner(probes=[spy], engine=engine, probe_buffer=10)
        result = runner.run(25)
        assert result.events == 25
        # Full batches of 10 plus the final partial flush.
        assert spy.batch_sizes == [10, 10, 5]
        assert runner.bus.pending == 0
        assert sum(spy.result()["counts"].values()) == 25

    def test_records_carry_event_and_observables(self):
        scenario = small_scenario(steps=10)
        engine = scenario.build_engine()
        seen = []

        class RecordSpy(CostLedgerProbe):
            name = "record-spy"

            def on_records(self, engine, records):
                seen.extend(records)

        runner = scenario.build_runner(probes=[RecordSpy()], engine=engine)
        result = runner.run(10)
        assert len(seen) == result.events
        for index, record in enumerate(seen, start=1):
            assert isinstance(record, StepRecord)
            assert record.step_index == index
            assert record.kind in ("join", "leave")
            assert record.role in ("honest", "byzantine")
            assert record.network_size > 0
            assert record.cluster_count > 0
            assert 0.0 <= record.worst_fraction <= 1.0
            assert record.operation in ("join", "leave")
            assert record.messages >= 0

    def test_no_record_allocation_without_buffered_probes(self):
        scenario = small_scenario(steps=10)
        engine = scenario.build_engine()
        runner = scenario.build_runner(
            probes=[CorruptionTrajectoryProbe(inline=True)], engine=engine
        )
        runner.run(10)
        assert runner.bus.records_published == 0

    def test_probe_added_after_construction_is_observed(self):
        scenario = small_scenario(steps=20)
        engine = scenario.build_engine()
        runner = scenario.build_runner(probes=[], engine=engine)
        late_inline = CorruptionTrajectoryProbe(inline=True)
        late_buffered = SizeTrajectoryProbe()
        runner.probes.append(late_inline)
        runner.probes.append(late_buffered)
        result = runner.run(20)
        assert late_inline.count == result.events
        assert late_buffered.count == result.events
        assert result.probes["size"]["final_size"] == result.final_size

    def test_rejects_nonpositive_probe_buffer(self):
        engine = small_scenario().build_engine()
        workload = UniformChurn(random.Random(3))
        with pytest.raises(ConfigurationError):
            SimulationRunner(engine, workload, probe_buffer=0)


class TestRunningSummary:
    def test_matches_batch_summary_while_under_cap(self):
        values = [random.Random(5).random() for _ in range(200)]
        running = RunningSummary(threshold=0.5, sample_cap=1024)
        for value in values:
            running.push(value)
        batch = summarize_values(values, threshold=0.5)
        stream = running.summary()
        assert stream.count == batch.count
        assert stream.minimum == batch.minimum
        assert stream.maximum == batch.maximum
        assert stream.p50 == batch.p50
        assert stream.p90 == batch.p90
        assert stream.p99 == batch.p99
        assert stream.steps_above_threshold == batch.steps_above_threshold
        assert stream.mean == pytest.approx(batch.mean, rel=1e-12)
        assert running.series == values

    def test_decimation_bounds_memory_and_keeps_exact_aggregates(self):
        running = RunningSummary(threshold=900.0, sample_cap=64)
        total = 1000
        for value in range(total):
            running.push(float(value))
        assert running.count == total
        assert len(running.series) <= 64
        assert running.series_stride > 1
        # Retained points are the stride-aligned subsequence from the start.
        assert running.series == [
            float(index) for index in range(0, total, running.series_stride)
        ]
        # Exact aggregates survive decimation.
        assert running.minimum == 0.0
        assert running.maximum == float(total - 1)
        assert running.steps_above_threshold == 100
        assert running.mean == pytest.approx((total - 1) / 2.0, rel=1e-12)

    def test_decimation_is_deterministic(self):
        first = RunningSummary(sample_cap=32)
        second = RunningSummary(sample_cap=32)
        for value in range(500):
            first.push(value * 0.001)
            second.push(value * 0.001)
        assert first.series == second.series
        assert first.series_stride == second.series_stride

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            RunningSummary(sample_cap=1)


class TestStreamingProbes:
    def test_trajectory_probe_decimates_but_keeps_peak_and_crossing(self):
        probe = CorruptionTrajectoryProbe(threshold=0.0, series_cap=16)
        scenario = small_scenario(steps=60)
        result = scenario.run(probes=[probe])
        assert probe.count == result.events
        assert len(probe.series) <= 16
        assert probe.series_stride >= 1
        assert probe.first_step_at_threshold == 1
        assert probe.summary().count == result.events

    def test_size_probe_exact_extrema_under_decimation(self):
        probe = SizeTrajectoryProbe(series_cap=8)
        result = small_scenario(steps=40).run(probes=[probe])
        data = probe.result()
        assert data["count"] == result.events
        assert len(data["sizes"]) <= 8
        assert data["final_size"] == result.final_size
        assert data["max_size"] >= data["min_size"]

    def test_cost_probe_memory_is_operation_bounded(self):
        probe = CostLedgerProbe()
        result = small_scenario(steps=50).run(probes=[probe])
        assert set(probe.messages_by_operation) <= {"join", "leave"}
        assert sum(probe.result()["counts"].values()) == result.events
        assert probe.total_messages() == sum(probe.messages_by_operation.values())
        for name in probe.operations():
            assert probe.mean_messages(name) * probe.count(name) == pytest.approx(
                probe.messages_by_operation[name]
            )

    def test_buffered_callback_sampling_matches_inline(self):
        inline = CallbackProbe(
            lambda _e, report, _s: report.network_size, every=4, name="inline-cb"
        )
        buffered = CallbackProbe(
            lambda _e, record, _s: record.network_size,
            every=4,
            name="buffered-cb",
            inline=False,
        )
        result = small_scenario(steps=30).run(probes=[inline, buffered])
        assert len(inline.values) == result.events // 4
        assert inline.values == buffered.values
