"""Unit tests for the overlay graph structure and the Erdős–Rényi bootstrap."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, UnknownClusterError
from repro.overlay.erdos_renyi import connect_if_disconnected, erdos_renyi_overlay
from repro.overlay.graph import OverlayGraph


class TestOverlayGraph:
    def build(self):
        graph = OverlayGraph()
        for cluster_id in range(5):
            graph.add_vertex(cluster_id, weight=10.0 + cluster_id)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 4)
        return graph

    def test_duplicate_vertex_rejected(self):
        graph = OverlayGraph()
        graph.add_vertex(1)
        with pytest.raises(UnknownClusterError):
            graph.add_vertex(1)

    def test_add_edge_returns_flags(self):
        graph = self.build()
        assert graph.add_edge(0, 2) is True
        assert graph.add_edge(0, 2) is False  # already there
        assert graph.add_edge(3, 3) is False  # loop

    def test_remove_edge(self):
        graph = self.build()
        assert graph.remove_edge(0, 1) is True
        assert graph.remove_edge(0, 1) is False
        assert not graph.has_edge(0, 1)

    def test_remove_vertex_returns_neighbours(self):
        graph = self.build()
        neighbours = graph.remove_vertex(2)
        assert neighbours == {1, 3}
        assert 2 not in graph
        assert not graph.has_edge(1, 2)

    def test_unknown_vertex_operations_raise(self):
        graph = self.build()
        with pytest.raises(UnknownClusterError):
            graph.neighbours(99)
        with pytest.raises(UnknownClusterError):
            graph.remove_vertex(99)
        with pytest.raises(UnknownClusterError):
            graph.set_weight(99, 1.0)

    def test_weights_and_walkable_interface(self):
        graph = self.build()
        assert graph.weight(3) == 13.0
        graph.set_weight(3, 21.0)
        assert graph.weight(3) == 21.0
        assert graph.total_weight() == pytest.approx(10 + 11 + 12 + 21 + 14)
        assert graph.max_weight() == 21.0

    def test_degree_and_edge_count(self):
        graph = self.build()
        assert graph.degree(1) == 2
        assert graph.max_degree() == 2
        assert graph.edge_count() == 4

    def test_edges_iteration(self):
        graph = self.build()
        edges = set(graph.edges())
        assert (0, 1) in edges
        assert all(first < second for first, second in edges)
        assert len(edges) == 4

    def test_connectivity(self):
        graph = self.build()
        assert graph.is_connected()
        graph.remove_edge(2, 3)
        assert not graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert OverlayGraph().is_connected()
        assert OverlayGraph().max_degree() == 0

    def test_copy_is_independent(self):
        graph = self.build()
        clone = graph.copy()
        clone.remove_vertex(0)
        assert 0 in graph
        assert graph.weight(1) == clone.weight(1)

    def test_adjacency_mapping(self):
        graph = self.build()
        mapping = graph.adjacency_mapping()
        assert mapping[1] == [0, 2]


class TestErdosRenyi:
    def test_probability_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_overlay([1, 2, 3], edge_probability=1.5, rng=random.Random(0))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_overlay([1, 1], edge_probability=0.5, rng=random.Random(0))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_overlay(
                [1, 2], edge_probability=0.5, rng=random.Random(0), weights=[1.0]
            )

    def test_probability_one_gives_complete_graph(self):
        overlay = erdos_renyi_overlay(range(6), edge_probability=1.0, rng=random.Random(0))
        assert overlay.edge_count() == 15
        assert overlay.max_degree() == 5

    def test_probability_zero_gives_empty_graph(self):
        overlay = erdos_renyi_overlay(range(6), edge_probability=0.0, rng=random.Random(0))
        assert overlay.edge_count() == 0

    def test_expected_density(self):
        rng = random.Random(42)
        overlay = erdos_renyi_overlay(range(40), edge_probability=0.3, rng=rng)
        possible = 40 * 39 // 2
        density = overlay.edge_count() / possible
        assert density == pytest.approx(0.3, abs=0.08)

    def test_weights_are_applied(self):
        overlay = erdos_renyi_overlay(
            [10, 20], edge_probability=1.0, rng=random.Random(0), weights=[3.0, 4.0]
        )
        assert overlay.weight(10) == 3.0
        assert overlay.weight(20) == 4.0

    def test_connect_if_disconnected_repairs(self):
        overlay = erdos_renyi_overlay(range(8), edge_probability=0.0, rng=random.Random(1))
        added = connect_if_disconnected(overlay, random.Random(2))
        assert overlay.is_connected()
        assert len(added) == 7  # a spanning set of patch edges

    def test_connect_if_disconnected_noop_when_connected(self):
        overlay = erdos_renyi_overlay(range(5), edge_probability=1.0, rng=random.Random(1))
        assert connect_if_disconnected(overlay, random.Random(2)) == []

    def test_single_vertex_graph(self):
        overlay = erdos_renyi_overlay([7], edge_probability=0.5, rng=random.Random(1))
        assert connect_if_disconnected(overlay, random.Random(2)) == []
        assert overlay.is_connected()
