"""Property-based tests for protocol-level invariants.

These drive the NOW engine and the OVER overlay with hypothesis-generated
churn sequences and assert the invariants the paper's theorems are about:
the partition stays valid, cluster sizes stay within the split/merge band,
the overlay stays connected with bounded degree, and the exchange primitive
preserves the multiset of nodes.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import NowEngine, default_parameters
from repro.core.exchange import ExchangeProtocol
from repro.core.randcl import RandCl
from repro.core.state import SystemState
from repro.network.node import NodeRole
from repro.params import ProtocolParameters
from repro.walks.sampler import WalkMode


def build_engine(seed: int) -> NowEngine:
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    return NowEngine.bootstrap(params, initial_size=100, byzantine_fraction=0.1, seed=seed)


@given(
    seed=st.integers(min_value=0, max_value=50),
    churn=st.lists(st.booleans(), min_size=5, max_size=25),
)
@settings(max_examples=20, deadline=None)
def test_engine_keeps_partition_and_size_band_under_arbitrary_churn(seed, churn):
    engine = build_engine(seed)
    for is_join in churn:
        if is_join or engine.network_size <= engine.parameters.lower_size_bound:
            engine.join()
        else:
            engine.leave(engine.random_member())
        report = engine.check_invariants(check_honest_majority=False)
        assert report.holds, report.violations


@given(
    seed=st.integers(min_value=0, max_value=30),
    cluster_count=st.integers(min_value=3, max_value=6),
    cluster_size=st.integers(min_value=5, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_exchange_preserves_node_multiset(seed, cluster_count, cluster_size):
    params = ProtocolParameters(max_size=1024, k=2.0, tau=0.2, epsilon=0.05)
    state = SystemState(parameters=params, rng=random.Random(seed))
    cluster_ids = []
    for _ in range(cluster_count):
        members = []
        for index in range(cluster_size):
            role = NodeRole.BYZANTINE if index == 0 else NodeRole.HONEST
            members.append(state.nodes.register(role=role).node_id)
        cluster_ids.append(state.clusters.create_cluster(members).cluster_id)
    state.overlay.bootstrap(
        cluster_ids, weights=[float(cluster_size)] * cluster_count
    )
    nodes_before = set(state.nodes.active_nodes())
    sizes_before = state.clusters.sizes()

    randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
    exchange = ExchangeProtocol(state, randcl)
    for cluster_id in cluster_ids:
        exchange.exchange_all(cluster_id)

    # Exchange moves nodes around but never creates, destroys or duplicates them.
    nodes_after = set()
    for cluster in state.clusters.clusters():
        assert nodes_after.isdisjoint(cluster.members)
        nodes_after |= cluster.members
    assert nodes_after == nodes_before
    assert state.clusters.sizes() == sizes_before


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_initial_partition_cluster_sizes_within_band(seed):
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    engine = NowEngine.bootstrap(params, initial_size=110, byzantine_fraction=0.1, seed=seed)
    sizes = list(engine.cluster_sizes().values())
    assert sum(sizes) == 110
    for size in sizes:
        assert params.merge_threshold <= size <= params.split_threshold
    assert engine.state.overlay.graph.is_connected()
    assert engine.state.overlay.graph.max_degree() <= params.overlay_degree_cap


@given(
    seed=st.integers(min_value=0, max_value=100),
    tau=st.floats(min_value=0.0, max_value=0.28),
)
@settings(max_examples=25, deadline=None)
def test_bootstrap_respects_requested_byzantine_fraction(seed, tau):
    params = default_parameters(max_size=1024, k=2.0, tau=0.28, epsilon=0.05)
    engine = NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=tau, seed=seed)
    achieved = engine.state.nodes.byzantine_fraction()
    assert abs(achieved - tau) <= 1.0 / 120 + 1e-9
