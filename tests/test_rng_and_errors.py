"""Unit tests for the RNG utilities and the exception hierarchy."""

from __future__ import annotations

import random

import pytest

from repro import errors
from repro.rng import (
    choice_weighted,
    derive_rng,
    make_rng,
    restore_rng,
    rng_state_from_json,
    rng_state_to_json,
    sample_without_replacement,
    shuffled,
)


class TestRngStateSerialisation:
    def test_round_trip_is_exact(self):
        rng = make_rng(17)
        rng.random()  # move off the seed position
        state = rng.getstate()
        assert rng_state_from_json(rng_state_to_json(state)) == state

    def test_round_trip_survives_json_text(self):
        import json

        rng = make_rng(23)
        for _ in range(10):
            rng.random()
        encoded = json.loads(json.dumps(rng_state_to_json(rng.getstate())))
        restored = restore_rng(encoded)
        # The restored generator continues the stream bit-identically.
        assert [restored.random() for _ in range(100)] == [rng.random() for _ in range(100)]
        assert restored.getrandbits(64) == rng.getrandbits(64)

    def test_gauss_carry_state_is_preserved(self):
        # gauss() banks a second variate inside the state tuple; a round
        # trip must carry it, or the streams desynchronise by one draw.
        rng = make_rng(5)
        rng.gauss(0.0, 1.0)
        twin = restore_rng(rng_state_to_json(rng.getstate()))
        assert [twin.gauss(0.0, 1.0) for _ in range(5)] == [
            rng.gauss(0.0, 1.0) for _ in range(5)
        ]

    def test_restored_stream_is_independent_object(self):
        rng = make_rng(1)
        twin = restore_rng(rng_state_to_json(rng.getstate()))
        assert twin is not rng
        twin.random()
        assert twin.getstate() != rng.getstate()


class TestMakeAndDerive:
    def test_same_seed_same_stream(self):
        first = make_rng(7)
        second = make_rng(7)
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_derive_is_deterministic(self):
        child_a = derive_rng(make_rng(3), "adversary")
        child_b = derive_rng(make_rng(3), "adversary")
        assert child_a.random() == child_b.random()

    def test_derive_labels_decorrelate(self):
        parent = make_rng(3)
        child_a = derive_rng(parent, "a")
        parent2 = make_rng(3)
        child_b = derive_rng(parent2, "b")
        assert child_a.random() != child_b.random()


class TestChoiceWeighted:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), [], [])

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a"], [0.0])

    def test_single_item(self):
        assert choice_weighted(make_rng(0), ["only"], [3.0]) == "only"

    def test_respects_weights_statistically(self):
        rng = make_rng(11)
        counts = {"heavy": 0, "light": 0}
        for _ in range(2000):
            counts[choice_weighted(rng, ["heavy", "light"], [9.0, 1.0])] += 1
        assert counts["heavy"] > counts["light"] * 4


class TestSampling:
    def test_sample_without_replacement_distinct(self):
        rng = make_rng(5)
        picked = sample_without_replacement(rng, range(100), 10)
        assert len(picked) == 10
        assert len(set(picked)) == 10

    def test_sample_more_than_available_returns_all(self):
        rng = make_rng(5)
        picked = sample_without_replacement(rng, range(4), 10)
        assert sorted(picked) == [0, 1, 2, 3]

    def test_shuffled_preserves_elements(self):
        rng = make_rng(5)
        items = list(range(50))
        result = shuffled(rng, items)
        assert sorted(result) == items
        assert items == list(range(50))  # input untouched


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "ProtocolViolationError",
            "ClusterCompromisedError",
            "UnknownNodeError",
            "UnknownClusterError",
            "NetworkSizeError",
            "AgreementError",
            "SimulationError",
            "WalkError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)

    def test_cluster_compromised_carries_context(self):
        exc = errors.ClusterCompromisedError(cluster_id=4, fraction=0.4, time_step=17)
        assert exc.cluster_id == 4
        assert exc.fraction == pytest.approx(0.4)
        assert exc.time_step == 17
        assert "cluster 4" in str(exc)

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.WalkError("boom")
