"""Tests for the binary trace codec, mixed-format tooling and checkpoint-from-trace.

The codec contract: a binary trace and a JSONL trace of the same run decode
to **identical frame sequences** (headers, events, index frames, end frame
— dict-for-dict), so every frame consumer (replay, trace-diff, resume,
checkpoint-from-trace) is format-agnostic for free.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scenario
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.trace import (
    Checkpoint,
    TraceReader,
    TraceWriter,
    checkpoint_from_trace,
    record_scenario,
    replay_trace,
    resume_from_checkpoint,
    sniff_trace_format,
    trace_diff,
)

PARAMS = dict(max_size=1024, initial_size=100, tau=0.1, k=2.0)


def small_scenario(seed=7, **overrides) -> Scenario:
    fields = dict(PARAMS)
    fields.update(overrides)
    return Scenario(name=fields.pop("name", "codec-test"), seed=seed, **fields)


def record(tmp_path, name, trace_format, seed=7, steps=50, index_every=10, flush_every=16, **overrides):
    path = os.path.join(str(tmp_path), name)
    session = record_scenario(
        small_scenario(seed=seed, steps=steps, **overrides),
        trace_path=path,
        index_every=index_every,
        trace_format=trace_format,
        flush_every=flush_every,
    )
    return path, session


class TestBinaryRoundTrip:
    # tmp_path is shared across generated examples; file names embed the
    # generated parameters and records open with "w", so reuse is safe.
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 2**16),
        steps=st.integers(5, 60),
        flush_every=st.integers(1, 64),
        walk_mode=st.sampled_from(["oracle", "simulated"]),
    )
    def test_binary_and_jsonl_decode_to_identical_frames(
        self, tmp_path, seed, steps, flush_every, walk_mode
    ):
        options = {"engine_options": {"walk_mode": walk_mode}}
        jsonl_path, _ = record(
            tmp_path, f"a-{seed}-{steps}.jsonl", "jsonl",
            seed=seed, steps=steps, flush_every=flush_every, **options,
        )
        binary_path, _ = record(
            tmp_path, f"b-{seed}-{steps}.bin", "binary",
            seed=seed, steps=steps, flush_every=flush_every, **options,
        )
        jsonl = TraceReader(jsonl_path)
        binary = TraceReader(binary_path)
        assert jsonl.trace_format == "jsonl"
        assert binary.trace_format == "binary"
        # Identical frame sequences — headers, events, index frames, end.
        assert jsonl.frames == binary.frames
        # Identical state-hash index frames, spelled out.
        assert [frame["h"] for frame in jsonl.index_frames()] == [
            frame["h"] for frame in binary.index_frames()
        ]
        assert jsonl.end_frame() == binary.end_frame()

    def test_binary_traces_replay_with_zero_divergence(self, tmp_path):
        path, session = record(tmp_path, "run.bin", "binary", steps=60)
        report = replay_trace(path)
        assert report.ok, report.summary()
        assert report.events_applied == session.result.events
        assert report.final_hash == session.final_state_hash

    def test_binary_is_smaller_than_jsonl(self, tmp_path):
        jsonl_path, _ = record(tmp_path, "a.jsonl", "jsonl", steps=80, flush_every=256)
        binary_path, _ = record(tmp_path, "b.bin", "binary", steps=80, flush_every=256)
        assert os.path.getsize(binary_path) * 2 < os.path.getsize(jsonl_path)

    def test_sniffing(self, tmp_path):
        jsonl_path, _ = record(tmp_path, "a.jsonl", "jsonl", steps=5)
        binary_path, _ = record(tmp_path, "b.bin", "binary", steps=5)
        assert sniff_trace_format(jsonl_path) == "jsonl"
        assert sniff_trace_format(binary_path) == "binary"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceWriter(os.path.join(str(tmp_path), "x.trace"), trace_format="msgpack")

    def test_flush_cadence_rejected_below_one(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceWriter(os.path.join(str(tmp_path), "x.trace"), flush_every=0)


class TestBinaryTruncation:
    def test_reader_tolerates_truncated_tail(self, tmp_path):
        path, _ = record(tmp_path, "run.bin", "binary", steps=60, flush_every=8)
        with open(path, "rb") as handle:
            content = handle.read()
        cut = os.path.join(str(tmp_path), "cut.bin")
        with open(cut, "wb") as handle:
            handle.write(content[: int(len(content) * 0.7)])  # kill mid-block
        reader = TraceReader(cut)
        assert reader.trace_format == "binary"
        assert reader.event_count() > 0
        assert reader.end_frame() is None
        # The surviving prefix still replays and verifies.
        assert replay_trace(cut).ok

    def test_corrupt_block_drops_tail_only(self, tmp_path):
        path, _ = record(tmp_path, "run.bin", "binary", steps=40, flush_every=8)
        with open(path, "rb") as handle:
            content = bytearray(handle.read())
        # Flip bytes near the end: the final block fails to decompress, the
        # prefix survives.
        content[-10:] = b"\xff" * 10
        bad = os.path.join(str(tmp_path), "bad.bin")
        with open(bad, "wb") as handle:
            handle.write(bytes(content))
        reader = TraceReader(bad)
        assert 0 < reader.event_count() <= 40


class TestInterruptedRecording:
    def test_buffered_frames_survive_a_mid_run_crash(self, tmp_path):
        from repro.scenarios import CallbackProbe

        class Boom(RuntimeError):
            pass

        def explode(engine, report, step_index):
            if step_index == 37:
                raise Boom()

        path = os.path.join(str(tmp_path), "crash.bin")
        with pytest.raises(Boom):
            record_scenario(
                small_scenario(steps=100),
                trace_path=path,
                index_every=1000,  # no index-frame flush before the crash
                trace_format="binary",
                flush_every=1000,  # everything rides the write buffer
                probes=[CallbackProbe(explode, name="boom")],
            )
        # abort() flushed the buffered tail: the trace is complete to the
        # interrupt point (36 applied events) and has no end frame.
        reader = TraceReader(path)
        assert reader.event_count() == 36
        assert reader.end_frame() is None
        assert replay_trace(path).ok


class TestMixedFormatDiff:
    def test_identical_runs_in_different_formats_do_not_diverge(self, tmp_path):
        jsonl_path, _ = record(tmp_path, "a.jsonl", "jsonl", steps=50)
        binary_path, _ = record(tmp_path, "b.bin", "binary", steps=50)
        diff = trace_diff(jsonl_path, binary_path)
        assert not diff.diverged, diff.summary()
        assert diff.compared_events == 50
        assert "headers record different scenarios" not in diff.notes

    def test_mixed_format_diff_still_pinpoints_divergence(self, tmp_path):
        jsonl_path, _ = record(tmp_path, "a.jsonl", "jsonl", steps=50, seed=7)
        binary_path, _ = record(tmp_path, "b.bin", "binary", steps=50, seed=8)
        diff = trace_diff(jsonl_path, binary_path)
        assert diff.diverged
        assert diff.step == 1

    def test_mixed_format_diff_cli_exit_codes(self, tmp_path, capsys):
        jsonl_path, _ = record(tmp_path, "a.jsonl", "jsonl", steps=30)
        binary_path, _ = record(tmp_path, "b.bin", "binary", steps=30)
        assert cli_main(["trace-diff", jsonl_path, binary_path]) == 0
        assert "traces agree" in capsys.readouterr().out


class TestCheckpointFromTrace:
    def test_resuming_matches_uninterrupted_run(self, tmp_path):
        straight = record_scenario(small_scenario(steps=60))
        path, _ = record(tmp_path, "run.jsonl", "jsonl", steps=60)
        checkpoint_path = os.path.join(str(tmp_path), "mid.ckpt.json")
        result = checkpoint_from_trace(path, to_step=25, checkpoint_path=checkpoint_path)
        assert result.steps_done == 25
        assert result.hash_checks > 0
        assert Checkpoint.load(checkpoint_path).steps_done == 25
        resumed = resume_from_checkpoint(checkpoint_path)
        assert resumed.final_state_hash == straight.final_state_hash

    def test_works_from_binary_traces_and_simulated_mode(self, tmp_path):
        options = {"engine_options": {"walk_mode": "simulated"}}
        straight = record_scenario(small_scenario(seed=11, steps=40, **options))
        path, _ = record(tmp_path, "run.bin", "binary", seed=11, steps=40, **options)
        checkpoint_path = os.path.join(str(tmp_path), "mid.ckpt.json")
        checkpoint_from_trace(path, to_step=15, checkpoint_path=checkpoint_path)
        resumed = resume_from_checkpoint(checkpoint_path)
        assert resumed.final_state_hash == straight.final_state_hash

    def test_every_recorded_step_is_a_resume_point(self, tmp_path):
        straight = record_scenario(small_scenario(steps=30))
        path, _ = record(tmp_path, "run.jsonl", "jsonl", steps=30)
        for to_step in (1, 13, 30):
            checkpoint_path = os.path.join(str(tmp_path), f"at-{to_step}.ckpt.json")
            checkpoint_from_trace(path, to_step=to_step, checkpoint_path=checkpoint_path)
            resumed = resume_from_checkpoint(checkpoint_path)
            assert resumed.final_state_hash == straight.final_state_hash, to_step

    def test_rejects_step_beyond_the_trace(self, tmp_path):
        path, _ = record(tmp_path, "run.jsonl", "jsonl", steps=20)
        with pytest.raises(ConfigurationError, match="beyond the last recorded event"):
            checkpoint_from_trace(
                path, to_step=999, checkpoint_path=os.path.join(str(tmp_path), "x.json")
            )

    def test_rejects_inconsistent_index_frame(self, tmp_path):
        import json

        path, _ = record(tmp_path, "run.jsonl", "jsonl", steps=30, index_every=10)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "x" and frame["i"] == 20:
                frame["ev"] += 1  # event count disagrees with the frames
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        bad = os.path.join(str(tmp_path), "bad-index.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        # Fail-loud: an index frame that disagrees with the re-driven run is
        # a divergence, never a silently skipped hash check.
        with pytest.raises(ConfigurationError, match="index frame inconsistent"):
            checkpoint_from_trace(
                bad, to_step=30, checkpoint_path=os.path.join(str(tmp_path), "x.json")
            )

    def test_rejects_tampered_trace(self, tmp_path):
        import json

        path, _ = record(tmp_path, "run.jsonl", "jsonl", steps=30)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "ev" and frame["i"] == 10:
                frame["sz"] += 1
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        bad = os.path.join(str(tmp_path), "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        with pytest.raises(ConfigurationError, match="diverged"):
            checkpoint_from_trace(
                bad, to_step=30, checkpoint_path=os.path.join(str(tmp_path), "x.json")
            )


class TestBinaryCli:
    def test_record_replay_resume_round_trip(self, tmp_path, capsys):
        trace = os.path.join(str(tmp_path), "run.bin")
        assert cli_main([
            "run-scenario", "--name", "uniform-churn", "--steps", "40",
            "--record", trace, "--trace-format", "binary",
            "--flush-every", "16", "--probe-buffer", "8", "--index-every", "10",
        ]) == 0
        capsys.readouterr()
        assert sniff_trace_format(trace) == "binary"
        assert TraceReader(trace).event_count() == 40

        assert cli_main(["replay", "--trace", trace]) == 0
        assert "replay OK" in capsys.readouterr().out

        checkpoint = os.path.join(str(tmp_path), "mid.ckpt.json")
        assert cli_main([
            "replay", "--trace", trace, "--to-step", "20", "--checkpoint", checkpoint,
        ]) == 0
        assert "checkpoint written" in capsys.readouterr().out
        assert cli_main(["resume", "--checkpoint", checkpoint, "--steps", "20"]) == 0

    def test_to_step_requires_checkpoint(self, tmp_path, capsys):
        trace = os.path.join(str(tmp_path), "run.jsonl")
        assert cli_main([
            "run-scenario", "--name", "uniform-churn", "--steps", "10", "--record", trace,
        ]) == 0
        capsys.readouterr()
        assert cli_main(["replay", "--trace", trace, "--to-step", "5"]) == 2
        assert "must be given together" in capsys.readouterr().err
