"""Unit tests for the NOW primitives: randNum, randCl and exchange."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.exchange import ExchangeProtocol
from repro.core.randcl import RandCl
from repro.core.randnum import RandNum
from repro.core.state import SystemState
from repro.errors import ProtocolViolationError, WalkError
from repro.network.metrics import CommunicationMetrics
from repro.network.node import NodeRole
from repro.params import ProtocolParameters
from repro.walks.sampler import WalkMode


def build_state(cluster_sizes=(6, 6, 6, 6), byzantine_per_cluster=1, seed=3):
    """A small clustered state with a bootstrapped overlay."""
    params = ProtocolParameters(max_size=1024, k=2.0, tau=0.25, epsilon=0.05)
    state = SystemState(parameters=params, rng=random.Random(seed))
    cluster_ids = []
    for size in cluster_sizes:
        members = []
        for index in range(size):
            role = NodeRole.BYZANTINE if index < byzantine_per_cluster else NodeRole.HONEST
            members.append(state.nodes.register(role=role).node_id)
        cluster = state.clusters.create_cluster(members)
        cluster_ids.append(cluster.cluster_id)
    weights = [float(len(state.clusters.get(cid))) for cid in cluster_ids]
    state.overlay.bootstrap(cluster_ids, weights)
    return state


class TestRandNum:
    def test_value_in_range(self):
        randnum = RandNum(random.Random(1))
        for _ in range(50):
            result = randnum.generate([1, 2, 3, 4], upper_bound=7, byzantine_members=[])
            assert 0 <= result.value < 7

    def test_cost_is_two_all_to_all_rounds(self):
        randnum = RandNum(random.Random(1))
        metrics = CommunicationMetrics()
        result = randnum.generate(range(5), upper_bound=10, byzantine_members=[], metrics=metrics)
        assert result.messages == 2 * 5 * 4
        assert result.rounds == 2
        assert metrics.messages == result.messages

    def test_rejects_empty_participants(self):
        randnum = RandNum(random.Random(1))
        with pytest.raises(ProtocolViolationError):
            randnum.generate([], upper_bound=4, byzantine_members=[])

    def test_rejects_bad_bound(self):
        randnum = RandNum(random.Random(1))
        with pytest.raises(ProtocolViolationError):
            randnum.generate([1], upper_bound=0, byzantine_members=[])

    def test_adversary_control_threshold(self):
        """With >= 2/3 Byzantine members the override decides the output."""
        override = lambda members, bound: 3
        randnum = RandNum(random.Random(1), adversary_override=override)
        secure = randnum.generate(range(6), upper_bound=100, byzantine_members=[0, 1, 2])
        assert not secure.adversary_controlled
        captured = randnum.generate(range(6), upper_bound=100, byzantine_members=[0, 1, 2, 3])
        assert captured.adversary_controlled
        assert captured.value == 3

    def test_uniformity(self):
        randnum = RandNum(random.Random(7))
        counts = Counter(
            randnum.generate(range(4), upper_bound=4, byzantine_members=[]).value
            for _ in range(4000)
        )
        for value in range(4):
            assert counts[value] / 4000 == pytest.approx(0.25, abs=0.05)

    def test_pick_member_returns_a_member(self):
        randnum = RandNum(random.Random(7))
        members = [10, 20, 30]
        for _ in range(20):
            result = randnum.pick_member(members, byzantine_members=[])
            assert result.value in members

    def test_pick_member_uniform(self):
        randnum = RandNum(random.Random(7))
        members = [10, 20, 30, 40]
        counts = Counter(
            randnum.pick_member(members, byzantine_members=[]).value for _ in range(4000)
        )
        for member in members:
            assert counts[member] / 4000 == pytest.approx(0.25, abs=0.05)

    def test_pick_member_empty_rejected(self):
        randnum = RandNum(random.Random(7))
        with pytest.raises(ProtocolViolationError):
            randnum.pick_member([], byzantine_members=[])


class TestRandCl:
    def test_select_returns_live_cluster(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        start = state.clusters.cluster_ids()[0]
        for _ in range(10):
            result = randcl.select(start)
            assert result.cluster_id in state.clusters
            assert result.messages > 0
            assert result.rounds > 0

    def test_unknown_start_rejected(self):
        state = build_state()
        randcl = RandCl(state)
        with pytest.raises(WalkError):
            randcl.select(9999)

    def test_costs_charged_to_metrics(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        metrics = CommunicationMetrics()
        result = randcl.select(state.clusters.cluster_ids()[0], metrics=metrics)
        assert metrics.messages == result.messages
        assert metrics.rounds == result.rounds

    def test_simulated_mode_runs(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.SIMULATED)
        result = randcl.select(state.clusters.cluster_ids()[0])
        assert result.mode is WalkMode.SIMULATED
        assert result.hops >= 0

    def test_mode_switching(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        randcl.set_walk_mode(WalkMode.SIMULATED)
        assert randcl.walk_mode is WalkMode.SIMULATED

    def test_selection_proportional_to_cluster_size(self):
        """randCl targets the |C|/n distribution (oracle mode samples it directly)."""
        state = build_state(cluster_sizes=(12, 4, 4, 4))
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        start = state.clusters.cluster_ids()[1]
        counts = Counter(randcl.select(start).cluster_id for _ in range(3000))
        big_cluster = state.clusters.cluster_ids()[0]
        assert counts[big_cluster] / 3000 == pytest.approx(0.5, abs=0.05)


class TestExchange:
    def test_exchange_preserves_partition_and_sizes(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        exchange = ExchangeProtocol(state, randcl)
        target = state.clusters.cluster_ids()[0]
        sizes_before = state.clusters.sizes()
        total_before = state.clusters.total_nodes()
        report = exchange.exchange_all(target)
        assert state.clusters.total_nodes() == total_before
        assert state.clusters.sizes() == sizes_before
        assert report.messages > 0
        # Every node still belongs to exactly one cluster.
        seen = set()
        for cluster in state.clusters.clusters():
            assert not (cluster.members & seen)
            seen |= cluster.members

    def test_exchange_counts_swaps_and_partners(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        exchange = ExchangeProtocol(state, randcl)
        target = state.clusters.cluster_ids()[0]
        report = exchange.exchange_all(target)
        assert report.swap_count <= 6
        assert all(partner in state.clusters for partner in report.partner_clusters)
        assert state.clusters.get(target).exchanges_performed == 1

    def test_exchange_refreshes_byzantine_fraction(self):
        """Lemma 1: after a full exchange the fraction concentrates around tau.

        Start from a fully corrupted cluster in a network with a 25% global
        corruption level; after the exchange the cluster's corruption must
        drop dramatically (averaged over repetitions).
        """
        fractions = []
        for seed in range(12):
            state = build_state(cluster_sizes=(8, 8, 8, 8), byzantine_per_cluster=2, seed=seed)
            # Corrupt every member of cluster 0 by rebuilding it from Byzantine nodes.
            target = state.clusters.cluster_ids()[0]
            cluster = state.clusters.get(target)
            for node_id in cluster.member_list():
                state.nodes.get(node_id).role = NodeRole.BYZANTINE
            assert state.cluster_byzantine_fraction(target) == 1.0
            randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
            exchange = ExchangeProtocol(state, randcl)
            exchange.exchange_all(target)
            fractions.append(state.cluster_byzantine_fraction(target))
        average = sum(fractions) / len(fractions)
        assert average < 0.65  # down from 1.0 towards the global corruption level
