"""ServiceFrontend over real sockets: backpressure, errors, shutdown."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    LiveEngineSession,
    ServiceFrontend,
    encode_frame,
    live_scenario,
)
from repro.service.frontend import _Pending


def make_session(seed: int = 9) -> LiveEngineSession:
    return LiveEngineSession(live_scenario(seed=seed, initial_size=80, max_size=256))


async def connect(frontend: ServiceFrontend):
    return await asyncio.open_connection("127.0.0.1", frontend.port)


async def rpc(reader, writer, frame):
    """Send one request frame and read one response line."""
    writer.write(encode_frame(frame))
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=5)
    assert line, "server closed the connection"
    return json.loads(line)


async def close_writer(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass


class TestRequestResponse:
    def test_ping_and_sample_round_trip(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                pong = await rpc(reader, writer, {"op": "ping", "id": 1})
                assert pong["ok"] and pong["result"] == {"pong": True}
                assert pong["id"] == 1
                assert pong["latency_ms"] >= 0
                sampled = await rpc(reader, writer, {"op": "sample", "id": "s"})
                assert sampled["ok"]
                assert "node_id" in sampled["result"]
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_responses_matched_by_id_when_pipelined(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                for index in range(20):
                    writer.write(encode_frame({"op": "sample", "id": index}))
                await writer.drain()
                seen = set()
                for _ in range(20):
                    line = await asyncio.wait_for(reader.readline(), timeout=5)
                    response = json.loads(line)
                    assert response["ok"]
                    seen.add(response["id"])
                assert seen == set(range(20))
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_malformed_request_answers_error_and_connection_survives(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
                assert bad["ok"] is False
                assert bad["error"] == "bad_request"
                unknown = await rpc(reader, writer, {"op": "teleport", "id": 2})
                assert unknown["error"] == "unknown_op"
                assert unknown["id"] == 2
                # The same connection still serves valid requests.
                pong = await rpc(reader, writer, {"op": "ping", "id": 3})
                assert pong["ok"]
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_engine_rejection_is_failed_not_fatal(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                response = await rpc(
                    reader, writer, {"op": "leave", "id": 1, "node_id": 10**9}
                )
                assert response["ok"] is False
                assert response["error"] == "failed"
                pong = await rpc(reader, writer, {"op": "ping", "id": 2})
                assert pong["ok"]
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_status_includes_queue_stats(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0, max_queue=7)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                await rpc(reader, writer, {"op": "ping", "id": 0})
                status = await rpc(reader, writer, {"op": "status", "id": 1})
                queue = status["result"]["queue"]
                assert queue["bound"] == 7
                assert queue["accepted"] >= 2
                assert queue["rejected"] == 0
                assert queue["depth"] >= 0
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_fast_fails_with_overloaded(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0, max_queue=1)
            await frontend.start()
            try:
                # Pin the queue at "full" so admission (not pump speed)
                # decides the outcome: the overloaded fast-path must answer
                # without the request ever reaching the engine.
                frontend.queue.offer = lambda item, lane=0: False
                reader, writer = await connect(frontend)
                events_before = frontend.session.events_applied
                response = await rpc(reader, writer, {"op": "join", "id": 1})
                assert response["ok"] is False
                assert response["error"] == "overloaded"
                assert "full" in response["message"]
                assert frontend.session.events_applied == events_before
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_real_overload_rejects_beyond_bound(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0, max_queue=2)
            await frontend.start()
            try:
                # Park the pump: it is awaiting the current wakeup event, so
                # swapping in a fresh one means offers no longer wake it and
                # requests pile up against the real bound.
                parked_wakeup = frontend.queue._wakeup
                frontend.queue._wakeup = asyncio.Event()
                reader, writer = await connect(frontend)
                for index in range(5):
                    writer.write(encode_frame({"op": "ping", "id": index}))
                await writer.drain()
                # Only the overloaded rejections answer immediately.
                rejected = []
                for _ in range(3):
                    line = await asyncio.wait_for(reader.readline(), timeout=5)
                    rejected.append(json.loads(line))
                assert all(r["error"] == "overloaded" for r in rejected)
                assert {r["id"] for r in rejected} == {2, 3, 4}
                assert frontend.queue.rejected == 3
                await close_writer(writer)
                # Un-park the pump so stop() can drain the two admitted
                # requests (their connection is gone; responses are dropped).
                parked_wakeup.set()
            finally:
                await frontend.stop()
            assert frontend.session.operations.get("ping", 0) == 2

        asyncio.run(scenario())


class TestShutdown:
    def test_shutdown_op_stops_serve_loop(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            serve = asyncio.ensure_future(frontend.serve_until_shutdown())
            reader, writer = await connect(frontend)
            response = await rpc(reader, writer, {"op": "shutdown", "id": 1})
            assert response["ok"] and response["result"] == {"stopping": True}
            await asyncio.wait_for(serve, timeout=5)
            assert frontend.shutdown_reason == "client shutdown request"
            assert frontend.session.closed
            await close_writer(writer)

        asyncio.run(scenario())

    def test_stop_drains_admitted_requests(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            loop = asyncio.get_running_loop()
            admitted = [
                _Pending(frame={"op": "join", "id": index}, future=loop.create_future())
                for index in range(5)
            ]
            for pending in admitted:
                assert frontend.queue.offer(pending)
            # Stop immediately: everything already admitted must still be
            # executed and resolved before the session seals its trace.
            await frontend.stop()
            for pending in admitted:
                assert pending.future.done()
                assert pending.future.result()["ok"]
            assert frontend.session.events_applied == 5

        asyncio.run(scenario())

    def test_requests_after_close_answer_shutting_down(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                reader, writer = await connect(frontend)
                await rpc(reader, writer, {"op": "ping", "id": 1})
                frontend.queue.close()
                response = await rpc(reader, writer, {"op": "ping", "id": 2})
                assert response["error"] == "shutting_down"
                await close_writer(writer)
            finally:
                await frontend.stop()

        asyncio.run(scenario())

    def test_stop_is_idempotent(self):
        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            await frontend.stop()
            await frontend.stop()
            assert frontend.session.closed

        asyncio.run(scenario())


class TestConstruction:
    def test_max_batch_must_be_positive(self):
        session = make_session()
        try:
            with pytest.raises(ValueError):
                ServiceFrontend(session, max_batch=0)
        finally:
            session.close()


class TestLoadGenerator:
    def test_operation_stats_classification(self):
        from repro.service import OperationStats

        stats = OperationStats()
        stats.record({"ok": True}, 1.0)
        stats.record({"ok": False, "error": "overloaded"}, 2.0)
        stats.record({"ok": False, "error": "failed"}, 3.0)
        assert (stats.ok, stats.overloaded, stats.failed) == (1, 1, 1)
        view = stats.as_dict()
        assert view["p50_ms"] == 2.0

    def test_load_report_aggregates_and_ok(self):
        from repro.service import LoadReport, OperationStats

        good = OperationStats(sent=10, ok=8, overloaded=2)
        report = LoadReport(
            offered_rate=100.0, duration=2.0, per_operation={"sample": good}
        )
        assert report.sent == 10
        assert report.achieved_rate == 4.0
        assert report.ok  # overloads are expected under load, not failures
        good.missing = 1
        assert not report.ok
        assert "sample" in report.summary_table()

    def test_run_load_against_live_frontend(self):
        from repro.service import run_load
        from repro.workloads.arrivals import PoissonArrivals

        async def scenario():
            frontend = ServiceFrontend(make_session(), port=0)
            await frontend.start()
            try:
                arrivals = PoissonArrivals(
                    rate=300.0,
                    duration=1.0,
                    mix={"sample": 0.7, "join": 0.2, "leave": 0.1},
                    seed=6,
                ).schedule()
                report = await run_load(
                    "127.0.0.1",
                    frontend.port,
                    arrivals,
                    offered_rate=300.0,
                    connections=2,
                    response_timeout=10.0,
                )
            finally:
                await frontend.stop()
            return report, len(arrivals)

        report, scheduled = asyncio.run(scenario())
        assert report.sent == scheduled
        assert report.ok, (report.failed, report.missing)
        assert report.completed == scheduled
        assert report.succeeded + report.overloaded == scheduled
        sampled = report.per_operation["sample"]
        assert sampled.latency.count == sampled.ok + sampled.overloaded + sampled.failed
        assert sampled.as_dict()["p99_ms"] >= sampled.as_dict()["p50_ms"]
