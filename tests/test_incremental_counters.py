"""Parity tests for the incremental state accounting.

The engine stack answers ``network_size``, per-cluster Byzantine fractions,
the compromised set, the worst fraction and uniform sampling from counters
maintained event-by-event (swap-delete arrays in the node registry, the
:class:`~repro.core.state.CorruptionTracker` behind the cluster registry).
These tests assert the one invariant that makes the optimisation safe: after
*any* sequence of joins, leaves, re-joins, role flips and cluster membership
operations, the incremental counters exactly match a from-scratch
recomputation over the ground-truth descriptors.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import NowEngine, default_parameters
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.network.node import NodeRole
from repro.workloads import UniformChurn, drive


# ----------------------------------------------------------------------
# From-scratch recomputation (the specification)
# ----------------------------------------------------------------------
def recompute_node_stats(state: SystemState):
    active = sorted(
        descriptor.node_id for descriptor in state.nodes.descriptors() if descriptor.is_active
    )
    byzantine = {
        descriptor.node_id
        for descriptor in state.nodes.descriptors()
        if descriptor.is_active and descriptor.is_byzantine
    }
    return active, byzantine


def recompute_fractions(state: SystemState):
    fractions = {}
    for cluster in state.clusters.clusters():
        if not cluster.members:
            fractions[cluster.cluster_id] = 0.0
            continue
        corrupt = sum(
            1
            for node_id in cluster.members
            if node_id in state.nodes and state.nodes.is_byzantine(node_id)
        )
        fractions[cluster.cluster_id] = corrupt / len(cluster.members)
    return fractions


def assert_counters_match(state: SystemState) -> None:
    active, byzantine = recompute_node_stats(state)
    assert state.nodes.active_nodes() == active
    assert state.nodes.active_count() == len(active)
    assert state.nodes.active_byzantine() == byzantine
    expected_fraction = len(byzantine) / len(active) if active else 0.0
    assert state.nodes.byzantine_fraction() == pytest.approx(expected_fraction)

    fractions = recompute_fractions(state)
    assert state.byzantine_fractions() == fractions
    assert state.network_size == sum(len(c) for c in state.clusters.clusters())
    expected_worst = max(fractions.values()) if fractions else 0.0
    assert state.worst_cluster_fraction() == pytest.approx(expected_worst)
    threshold = state.parameters.byzantine_alarm_fraction
    expected_compromised = sorted(
        cluster_id for cluster_id, fraction in fractions.items() if fraction >= threshold
    )
    assert state.compromised_clusters() == expected_compromised


# ----------------------------------------------------------------------
# Structural property test: arbitrary registry-level operation sequences
# ----------------------------------------------------------------------
OP_CODES = st.integers(min_value=0, max_value=8)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(OP_CODES, min_size=1, max_size=60), seed=st.integers(0, 2**32 - 1))
def test_counters_match_recompute_after_arbitrary_operations(ops, seed):
    rng = random.Random(seed)
    params = default_parameters(max_size=512, k=2.0, tau=0.2, epsilon=0.05)
    state = SystemState(parameters=params, rng=random.Random(seed + 1))

    def active_unassigned():
        return [
            d.node_id
            for d in state.nodes.descriptors()
            if d.is_active and not state.clusters.contains_node(d.node_id)
        ]

    def assigned():
        return [
            d.node_id for d in state.nodes.descriptors() if state.clusters.contains_node(d.node_id)
        ]

    for op in ops:
        if op == 0:  # register (possibly Byzantine)
            role = NodeRole.BYZANTINE if rng.random() < 0.3 else NodeRole.HONEST
            state.nodes.register(role=role)
        elif op == 1:  # a random active node leaves
            candidates = [d.node_id for d in state.nodes.descriptors() if d.is_active]
            if candidates:
                state.nodes.mark_left(rng.choice(candidates), time_step=1)
        elif op == 2:  # a departed node re-joins
            candidates = [d.node_id for d in state.nodes.descriptors() if not d.is_active]
            if candidates:
                state.nodes.reactivate(rng.choice(candidates), time_step=2)
        elif op == 3:  # adaptive corruption / repair: flip a node's role in place
            candidates = [d.node_id for d in state.nodes.descriptors()]
            if candidates:
                descriptor = state.nodes.get(rng.choice(candidates))
                descriptor.role = (
                    NodeRole.HONEST if descriptor.is_byzantine else NodeRole.BYZANTINE
                )
        elif op == 4:  # form a cluster out of unassigned active nodes
            pool = active_unassigned()
            if pool:
                rng.shuffle(pool)
                state.clusters.create_cluster(pool[: rng.randint(1, len(pool))])
        elif op == 5:  # move a member to another cluster
            members = assigned()
            targets = state.clusters.cluster_ids()
            if members and len(targets) >= 2:
                state.clusters.move_member(rng.choice(members), rng.choice(targets))
        elif op == 6:  # swap members between two clusters (an exchange step)
            targets = state.clusters.cluster_ids()
            if len(targets) >= 2:
                first, second = rng.sample(targets, 2)
                first_members = state.clusters.get(first).member_list()
                second_members = state.clusters.get(second).member_list()
                if first_members and second_members:
                    state.clusters.swap_members(
                        first, rng.choice(first_members), second, rng.choice(second_members)
                    )
        elif op == 7:  # remove a member from its cluster
            members = assigned()
            if members:
                node_id = rng.choice(members)
                state.clusters.remove_member(state.clusters.cluster_of(node_id), node_id)
        elif op == 8:  # dissolve a cluster
            targets = state.clusters.cluster_ids()
            if targets:
                state.clusters.dissolve_cluster(rng.choice(targets))
        assert_counters_match(state)


# ----------------------------------------------------------------------
# Engine-level parity: real churn through the maintenance operations
# ----------------------------------------------------------------------
class TestEngineLevelParity:
    def test_now_engine_counters_survive_churn(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.15, epsilon=0.05)
        engine = NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=0.15, seed=11)
        workload = UniformChurn(random.Random(12), byzantine_join_fraction=0.15)
        drive(engine, workload, steps=120)
        assert_counters_match(engine.state)

    def test_now_engine_counters_survive_adaptive_corruption(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
        engine = NowEngine.bootstrap(params, initial_size=100, byzantine_fraction=0.1, seed=21)
        rng = random.Random(22)
        workload = UniformChurn(rng, byzantine_join_fraction=0.1)
        for _ in range(60):
            event = workload.next_event(engine)
            if event is not None:
                engine.apply_event(event)
            if rng.random() < 0.25:  # corrupt a random member mid-run
                engine.state.nodes.get(engine.random_member()).role = NodeRole.BYZANTINE
        assert_counters_match(engine.state)

    def test_baseline_engine_counters_survive_churn(self):
        from repro.baselines import NoShuffleEngine

        params = default_parameters(max_size=1024, k=2.0, tau=0.2, epsilon=0.05)
        engine = NoShuffleEngine.bootstrap(
            params, initial_size=100, byzantine_fraction=0.2, seed=31
        )
        workload = UniformChurn(random.Random(32), byzantine_join_fraction=0.2)
        drive(engine, workload, steps=120)
        assert_counters_match(engine.state)


# ----------------------------------------------------------------------
# O(1) sampling paths
# ----------------------------------------------------------------------
class TestSampling:
    def test_sampled_members_are_active_and_honest_when_requested(self):
        params = default_parameters(max_size=512, k=2.0, tau=0.25, epsilon=0.05)
        engine = NowEngine.bootstrap(params, initial_size=80, byzantine_fraction=0.25, seed=41)
        byzantine = engine.state.nodes.active_byzantine()
        for _ in range(50):
            member = engine.random_member()
            assert engine.state.nodes.is_active(member)
            honest = engine.random_member(honest_only=True)
            assert honest not in byzantine
            assert engine.state.nodes.is_active(honest)

    def test_sampling_errors_when_empty(self):
        params = default_parameters(max_size=512, k=2.0, tau=0.1, epsilon=0.05)
        state = SystemState(parameters=params, rng=random.Random(1))
        with pytest.raises(ConfigurationError):
            state.nodes.sample_active(state.rng)
        with pytest.raises(ConfigurationError):
            state.nodes.sample_active_honest(state.rng)

    def test_honest_sampling_errors_when_all_byzantine(self):
        params = default_parameters(max_size=512, k=2.0, tau=0.1, epsilon=0.05)
        state = SystemState(parameters=params, rng=random.Random(2))
        state.nodes.register(role=NodeRole.BYZANTINE)
        with pytest.raises(ConfigurationError):
            state.nodes.sample_active_honest(state.rng)

    def test_scan_counters_stay_flat_during_sampling(self):
        params = default_parameters(max_size=512, k=2.0, tau=0.2, epsilon=0.05)
        engine = NowEngine.bootstrap(params, initial_size=80, byzantine_fraction=0.2, seed=51)
        before = engine.state.nodes.full_scan_count
        for _ in range(100):
            engine.random_member()
            engine.random_member(honest_only=True)
            engine.random_cluster()
        assert engine.state.nodes.full_scan_count == before
