"""Unit tests for private channels and the synchronous round simulator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.network.channels import ChannelSet
from repro.network.message import Message, MessageKind
from repro.network.metrics import CommunicationMetrics
from repro.network.node import EchoProcess, NodeDescriptor, NodeProcess, SilentProcess
from repro.network.simulator import RoundSimulator
from repro.network.topology import KnowledgeGraph


def clique_graph(size: int) -> KnowledgeGraph:
    graph = KnowledgeGraph()
    graph.connect_clique(range(size))
    return graph


class TestChannelSet:
    def test_send_requires_knowledge(self):
        graph = KnowledgeGraph()
        graph.add_node(1)
        graph.add_node(2)
        channels = ChannelSet(graph)
        with pytest.raises(SimulationError):
            channels.send(Message(sender=1, receiver=2), round_number=0)

    def test_send_to_self_rejected(self):
        graph = clique_graph(3)
        channels = ChannelSet(graph)
        with pytest.raises(SimulationError):
            channels.send(Message(sender=1, receiver=1), round_number=0)

    def test_delivery_next_round_only(self):
        graph = clique_graph(3)
        channels = ChannelSet(graph)
        channels.send(Message(sender=0, receiver=1, payload="x"), round_number=0)
        assert channels.deliver(1) == []  # not yet advanced
        channels.advance_round()
        delivered = channels.deliver(1)
        assert len(delivered) == 1
        assert delivered[0].payload == "x"
        # Consuming clears the buffer.
        assert channels.deliver(1) == []

    def test_metrics_charged_per_message(self):
        graph = clique_graph(4)
        metrics = CommunicationMetrics()
        channels = ChannelSet(graph, metrics=metrics)
        channels.broadcast(0, [1, 2, 3], MessageKind.CONTROL, "t", None, round_number=0)
        assert metrics.messages == 3

    def test_broadcast_skips_self(self):
        graph = clique_graph(3)
        channels = ChannelSet(graph)
        sent = channels.broadcast(0, [0, 1, 2], MessageKind.CONTROL, "t", None, round_number=0)
        assert sent == 2

    def test_drop_node_discards_messages(self):
        graph = clique_graph(3)
        channels = ChannelSet(graph)
        channels.send(Message(sender=0, receiver=1), round_number=0)
        channels.drop_node(1)
        channels.advance_round()
        assert channels.deliver(1) == []

    def test_disable_knowledge_enforcement(self):
        graph = KnowledgeGraph()
        graph.add_node(1)
        graph.add_node(2)
        channels = ChannelSet(graph, enforce_knowledge=False)
        channels.send(Message(sender=1, receiver=2), round_number=0)
        channels.advance_round()
        assert len(channels.deliver(2)) == 1


class CountingProcess(NodeProcess):
    """Counts rounds and received messages; sends one message per round to node 0."""

    def __init__(self, descriptor, target=0):
        super().__init__(descriptor)
        self.rounds_seen = 0
        self.received = []
        self._target = target

    def on_round(self, round_number):
        self.rounds_seen += 1
        if self.node_id != self._target:
            return (
                Message(sender=self.node_id, receiver=self._target, topic="ping", payload=round_number),
            )
        return ()

    def on_message(self, message, round_number):
        self.received.append(message)
        return ()


class TestRoundSimulator:
    def build(self, count=3):
        simulator = RoundSimulator(knowledge=clique_graph(count))
        processes = []
        for node_id in range(count):
            process = CountingProcess(NodeDescriptor(node_id=node_id))
            processes.append(process)
            simulator.add_process(process)
        return simulator, processes

    def test_duplicate_process_rejected(self):
        simulator, _ = self.build(2)
        with pytest.raises(SimulationError):
            simulator.add_process(CountingProcess(NodeDescriptor(node_id=0)))

    def test_round_counting_and_metrics(self):
        simulator, processes = self.build(3)
        simulator.run(5)
        assert simulator.current_round == 5
        assert simulator.metrics.rounds == 5
        assert all(process.rounds_seen == 5 for process in processes)

    def test_messages_delivered_next_round(self):
        simulator, processes = self.build(3)
        simulator.run(1)
        assert processes[0].received == []  # sent in round 1, delivered in round 2
        simulator.run(1)
        assert len(processes[0].received) == 2

    def test_echo_process_round_trip(self):
        simulator = RoundSimulator(knowledge=clique_graph(2))
        echo = EchoProcess(NodeDescriptor(node_id=1))
        counter = CountingProcess(NodeDescriptor(node_id=0), target=1)
        simulator.add_process(counter)
        simulator.add_process(echo)
        # counter is node 0 targeting 1; echo answers back.
        simulator.run(3)
        assert any(message.topic.startswith("echo:") for message in counter.received)

    def test_stop_when_predicate(self):
        simulator, _ = self.build(2)
        executed = simulator.run(50, stop_when=lambda sim: sim.current_round >= 4)
        assert executed == 4

    def test_run_until_quiescent_with_silent_processes(self):
        simulator = RoundSimulator(knowledge=clique_graph(2))
        simulator.add_process(SilentProcess(NodeDescriptor(node_id=0)))
        simulator.add_process(SilentProcess(NodeDescriptor(node_id=1)))
        executed = simulator.run_until_quiescent(max_rounds=10)
        assert executed == 0

    def test_halted_process_not_invoked(self):
        simulator, processes = self.build(2)
        processes[1].halt()
        simulator.run(3)
        assert processes[1].rounds_seen == 0
        assert simulator.all_halted() is False

    def test_remove_process(self):
        simulator, processes = self.build(3)
        simulator.remove_process(2)
        simulator.run(2)
        senders = {message.sender for message in processes[0].received}
        assert 2 not in senders

    def test_negative_rounds_rejected(self):
        simulator, _ = self.build(2)
        with pytest.raises(SimulationError):
            simulator.run(-1)
