"""Unit tests for the baseline schemes."""

from __future__ import annotations

import random

import pytest

from repro import default_parameters
from repro.baselines import (
    CuckooRuleEngine,
    NoShuffleEngine,
    SingleClusterBaseline,
    StaticClusterEngine,
)
from repro.core.events import ChurnEvent
from repro.errors import ConfigurationError
from repro.network.node import NodeRole


def params():
    return default_parameters(max_size=1024, k=2.0, tau=0.15, epsilon=0.05)


class TestNoShuffleEngine:
    def test_bootstrap_partition(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        assert engine.network_size == 100
        assert engine.cluster_count == 100 // params().target_cluster_size
        assert abs(engine.state.nodes.byzantine_fraction() - 0.15) < 0.02

    def test_join_goes_to_contacted_cluster(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        target = engine.state.clusters.cluster_ids()[0]
        size_before = len(engine.state.clusters.get(target))
        engine.join(role=NodeRole.BYZANTINE, contact_cluster=target)
        assert len(engine.state.clusters.get(target)) == size_before + 1

    def test_leave_and_merge(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        target = engine.state.clusters.cluster_ids()[0]
        # Drain the cluster below the merge threshold.
        while len(engine.state.clusters.get(target)) >= engine.parameters.merge_threshold:
            victim = engine.state.clusters.get(target).member_list()[0]
            engine.leave(victim)
            if target not in engine.state.clusters:
                break
        assert target not in engine.state.clusters
        # All remaining active nodes are still clustered.
        for node_id in engine.state.nodes.active_nodes():
            assert engine.state.clusters.contains_node(node_id)

    def test_split_on_overflow(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        target = engine.state.clusters.cluster_ids()[0]
        clusters_before = engine.cluster_count
        for _ in range(engine.parameters.split_threshold):
            engine.join(contact_cluster=target)
            if engine.cluster_count > clusters_before:
                break
        assert engine.cluster_count > clusters_before

    def test_history_and_reports(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        report = engine.join()
        assert report.network_size == 101
        assert engine.history[-1] is report
        assert isinstance(report.safe, bool)

    def test_leave_requires_node_id(self):
        engine = NoShuffleEngine.bootstrap(params(), initial_size=100, seed=1)
        with pytest.raises(ConfigurationError):
            engine.apply_event(ChurnEvent(kind=ChurnEvent.leave(0).kind, node_id=None))


class TestStaticClusterEngine:
    def test_cluster_count_never_changes(self):
        engine = StaticClusterEngine.bootstrap(params(), initial_size=100, seed=2)
        initial_clusters = engine.cluster_count
        for _ in range(80):
            engine.join()
        assert engine.cluster_count == initial_clusters

    def test_max_cluster_size_grows_under_growth(self):
        engine = StaticClusterEngine.bootstrap(params(), initial_size=100, seed=2)
        before = engine.max_cluster_size()
        for _ in range(150):
            engine.join()
        after = engine.max_cluster_size()
        assert after > before
        assert engine.implied_agreement_cost() == after * after

    def test_leave_allows_empty_clusters(self):
        engine = StaticClusterEngine.bootstrap(params(), initial_size=100, seed=2)
        target = engine.state.clusters.cluster_ids()[0]
        for member in engine.state.clusters.get(target).member_list():
            engine.leave(member)
        assert target in engine.state.clusters
        assert len(engine.state.clusters.get(target)) == 0


class TestCuckooRuleEngine:
    def test_join_evicts_members(self):
        engine = CuckooRuleEngine.bootstrap(params(), initial_size=100, seed=3)
        sizes_before = engine.cluster_sizes()
        engine.join()
        # Total grew by one; some cluster other than the host may have changed size.
        assert engine.network_size == 101
        assert sum(engine.cluster_sizes().values()) == 101
        assert engine.cluster_count == len(sizes_before)

    def test_negative_evictions_rejected(self):
        with pytest.raises(ValueError):
            CuckooRuleEngine.bootstrap(params(), initial_size=100, seed=3, evictions_per_join=-1)

    def test_partition_remains_valid_under_churn(self):
        engine = CuckooRuleEngine.bootstrap(params(), initial_size=100, seed=3)
        rng = random.Random(4)
        for _ in range(60):
            if rng.random() < 0.5:
                engine.join()
            else:
                engine.leave(engine.random_member())
        seen = set()
        for cluster in engine.state.clusters.clusters():
            assert not (cluster.members & seen)
            seen |= cluster.members
        assert len(seen) == engine.network_size

    def test_mixes_better_than_no_shuffle_under_targeted_joins(self):
        """Directed Byzantine joins pile up in a no-shuffle cluster but spread under the cuckoo rule."""
        cuckoo = CuckooRuleEngine.bootstrap(params(), initial_size=120, seed=5)
        plain = NoShuffleEngine.bootstrap(params(), initial_size=120, seed=5)
        cuckoo_target = cuckoo.state.clusters.cluster_ids()[0]
        plain_target = plain.state.clusters.cluster_ids()[0]
        for _ in range(15):
            cuckoo.join(role=NodeRole.BYZANTINE, contact_cluster=cuckoo_target)
            plain.join(role=NodeRole.BYZANTINE, contact_cluster=plain_target)
        plain_fraction = plain.state.cluster_byzantine_fraction(plain_target)
        cuckoo_fraction = (
            cuckoo.state.cluster_byzantine_fraction(cuckoo_target)
            if cuckoo_target in cuckoo.state.clusters
            else 0.0
        )
        assert plain_fraction > cuckoo_fraction


class TestSingleClusterBaseline:
    def test_closed_form_costs(self):
        baseline = SingleClusterBaseline()
        assert baseline.broadcast_messages(100) == 100 * 99
        assert baseline.sample_messages(100) == 99
        assert baseline.agreement_messages(100) > 100 * 99  # several phases
        report = baseline.report(100)
        assert report.broadcast_messages == 9900

    def test_broadcast_cost_is_quadratic(self):
        baseline = SingleClusterBaseline()
        assert baseline.broadcast_messages(200) == pytest.approx(
            4 * baseline.broadcast_messages(100), rel=0.05
        )

    def test_measured_agreement_matches_order_of_closed_form(self):
        baseline = SingleClusterBaseline(random.Random(1))
        measured = baseline.measured_agreement_messages(20, fault_fraction=0.1)
        closed = baseline.agreement_messages(20, fault_fraction=0.1)
        assert measured > 0
        # Same order of magnitude (the closed form over-counts king messages slightly).
        assert 0.1 * closed < measured < 10 * closed
