"""Unit tests for the continuous random walk machinery."""

from __future__ import annotations

import random

import pytest

from repro.errors import WalkError
from repro.walks.ctrw import ContinuousRandomWalk
from repro.walks.interface import MappingGraph


def cycle_graph(size: int, weights=None) -> MappingGraph:
    adjacency = {i: [(i - 1) % size, (i + 1) % size] for i in range(size)}
    return MappingGraph(adjacency, weights)


def star_graph(leaves: int) -> MappingGraph:
    adjacency = {0: list(range(1, leaves + 1))}
    for leaf in range(1, leaves + 1):
        adjacency[leaf] = [0]
    return MappingGraph(adjacency)


class TestMappingGraph:
    def test_default_weights_are_one(self):
        graph = cycle_graph(4)
        assert graph.weight(2) == 1.0
        assert graph.total_weight() == 4.0

    def test_missing_weights_rejected(self):
        with pytest.raises(ValueError):
            MappingGraph({0: [1], 1: [0]}, weights={0: 1.0})

    def test_target_distribution_normalised(self):
        graph = cycle_graph(4, weights={0: 1, 1: 1, 2: 1, 3: 5})
        distribution = graph.target_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[3] == pytest.approx(5 / 8)

    def test_degree_and_counts(self):
        graph = star_graph(5)
        assert graph.degree(0) == 5
        assert graph.degree(3) == 1
        assert graph.vertex_count() == 6
        assert graph.max_weight() == 1.0


class TestContinuousWalk:
    def test_zero_duration_stays_put(self):
        graph = cycle_graph(5)
        walk = ContinuousRandomWalk(graph, random.Random(1))
        result = walk.run(2, duration=0.0)
        assert result.endpoint == 2
        assert result.hops == 0

    def test_negative_duration_rejected(self):
        graph = cycle_graph(5)
        walk = ContinuousRandomWalk(graph, random.Random(1))
        with pytest.raises(WalkError):
            walk.run(0, duration=-1.0)

    def test_unknown_start_rejected(self):
        graph = cycle_graph(5)
        walk = ContinuousRandomWalk(graph, random.Random(1))
        with pytest.raises(WalkError):
            walk.run(99, duration=1.0)

    def test_isolated_vertex_never_moves(self):
        graph = MappingGraph({0: [], 1: [2], 2: [1]})
        walk = ContinuousRandomWalk(graph, random.Random(1))
        result = walk.run(0, duration=10.0)
        assert result.endpoint == 0
        assert result.hops == 0

    def test_hops_grow_with_duration(self):
        graph = cycle_graph(8)
        walk = ContinuousRandomWalk(graph, random.Random(7))
        short = sum(walk.run(0, duration=1.0).hops for _ in range(50))
        long = sum(walk.run(0, duration=10.0).hops for _ in range(50))
        assert long > short

    def test_path_recording(self):
        graph = cycle_graph(6)
        walk = ContinuousRandomWalk(graph, random.Random(3))
        result = walk.run(0, duration=5.0, record_path=True)
        assert result.path[0] == 0
        assert result.path[-1] == result.endpoint
        assert len(result.path) == result.hops + 1
        # Consecutive path entries are neighbours on the cycle.
        for previous, current in zip(result.path, result.path[1:]):
            assert current in graph.neighbours(previous)

    def test_discrete_skeleton_steps(self):
        graph = cycle_graph(6)
        walk = ContinuousRandomWalk(graph, random.Random(3))
        result = walk.run_discrete(0, steps=12)
        assert result.hops == 12

    def test_discrete_negative_steps_rejected(self):
        graph = cycle_graph(6)
        walk = ContinuousRandomWalk(graph, random.Random(3))
        with pytest.raises(WalkError):
            walk.run_discrete(0, steps=-1)

    def test_stationary_distribution_is_uniform_on_irregular_graph(self):
        """The CTRW endpoint distribution approaches uniform even on a star.

        This is the reason the paper uses continuous (rather than
        discrete-time) walks: the discrete walk on a star spends half its
        time at the hub, the continuous one is uniform.
        """
        graph = star_graph(4)  # hub degree 4, leaves degree 1 -- very irregular
        walk = ContinuousRandomWalk(graph, random.Random(11))
        distribution = walk.endpoint_distribution(0, duration=50.0, samples=2000)
        for vertex in graph.vertices():
            assert distribution.get(vertex, 0.0) == pytest.approx(1.0 / 5.0, abs=0.06)

    def test_expected_hop_rate(self):
        graph = star_graph(4)
        walk = ContinuousRandomWalk(graph, random.Random(0))
        assert walk.expected_hop_rate(0) == 4.0
        assert walk.expected_hop_rate() == pytest.approx((4 + 1 * 4) / 5)

    def test_endpoint_distribution_requires_samples(self):
        graph = cycle_graph(4)
        walk = ContinuousRandomWalk(graph, random.Random(0))
        with pytest.raises(WalkError):
            walk.endpoint_distribution(0, duration=1.0, samples=0)
