"""Unit tests for the Join/Leave/Split/Merge maintenance operations."""

from __future__ import annotations

import random

import pytest

from repro.core.exchange import ExchangeProtocol
from repro.core.operations import (
    JoinOperation,
    LeaveOperation,
    MergeOperation,
    SplitOperation,
)
from repro.core.randcl import RandCl
from repro.core.state import SystemState
from repro.errors import ProtocolViolationError, UnknownClusterError
from repro.network.node import NodeRole
from repro.params import ProtocolParameters
from repro.walks.sampler import WalkMode


def build_state(cluster_sizes=(12, 12, 12), seed=5, max_size=1024):
    params = ProtocolParameters(max_size=max_size, k=2.0, tau=0.1, epsilon=0.05)
    state = SystemState(parameters=params, rng=random.Random(seed))
    cluster_ids = []
    for size in cluster_sizes:
        members = [state.nodes.register().node_id for _ in range(size)]
        cluster_ids.append(state.clusters.create_cluster(members).cluster_id)
    weights = [float(len(state.clusters.get(cid))) for cid in cluster_ids]
    state.overlay.bootstrap(cluster_ids, weights)
    return state


def make_ops(state):
    randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
    exchange = ExchangeProtocol(state, randcl)
    join = JoinOperation(state, randcl, exchange=exchange)
    leave = LeaveOperation(state, randcl, exchange=exchange)
    split = SplitOperation(state, randcl, exchange=exchange)
    merge = MergeOperation(state, randcl, exchange=exchange)
    return join, leave, split, merge


class TestJoinOperation:
    def test_join_adds_node_to_some_cluster(self):
        state = build_state(cluster_sizes=(8, 8, 8))
        join, _, _, _ = make_ops(state)
        newcomer = state.nodes.register().node_id
        contact = state.clusters.cluster_ids()[0]
        report = join.execute(newcomer, contact)
        assert state.clusters.contains_node(newcomer)
        assert report.operation == "join"
        assert report.primary_cluster in state.clusters
        assert report.messages > 0
        assert report.exchanged_nodes > 0  # the host cluster was shuffled

    def test_join_unknown_contact_rejected(self):
        state = build_state()
        join, _, _, _ = make_ops(state)
        newcomer = state.nodes.register().node_id
        with pytest.raises(UnknownClusterError):
            join.execute(newcomer, 9999)

    def test_join_already_clustered_node_rejected(self):
        state = build_state()
        join, _, _, _ = make_ops(state)
        existing = state.clusters.get(state.clusters.cluster_ids()[0]).member_list()[0]
        with pytest.raises(ProtocolViolationError):
            join.execute(existing, state.clusters.cluster_ids()[0])

    def test_join_triggers_split_above_threshold(self):
        state = build_state(cluster_sizes=(8,))  # single cluster, will receive the join
        params = state.parameters
        # Grow the cluster to just below the split threshold.
        only_cluster = state.clusters.cluster_ids()[0]
        while len(state.clusters.get(only_cluster)) <= params.split_threshold:
            filler = state.nodes.register().node_id
            state.clusters.add_member(only_cluster, filler)
        state.sync_all_overlay_weights()
        join, _, _, _ = make_ops(state)
        newcomer = state.nodes.register().node_id
        report = join.execute(newcomer, only_cluster)
        assert "split" in report.operations_flat()
        assert len(state.clusters) == 2

    def test_join_without_split_when_disallowed(self):
        state = build_state(cluster_sizes=(8,))
        only_cluster = state.clusters.cluster_ids()[0]
        while len(state.clusters.get(only_cluster)) <= state.parameters.split_threshold:
            state.clusters.add_member(only_cluster, state.nodes.register().node_id)
        state.sync_all_overlay_weights()
        join, _, _, _ = make_ops(state)
        newcomer = state.nodes.register().node_id
        report = join.execute(newcomer, only_cluster, allow_split=False)
        assert "split" not in report.operations_flat()
        assert len(state.clusters) == 1


class TestLeaveOperation:
    def test_leave_removes_node(self):
        state = build_state()
        _, leave, _, _ = make_ops(state)
        cluster_id = state.clusters.cluster_ids()[0]
        departing = state.clusters.get(cluster_id).member_list()[0]
        report = leave.execute(departing)
        assert not state.clusters.contains_node(departing)
        assert report.operation == "leave"
        assert report.primary_cluster == cluster_id
        assert report.messages > 0

    def test_leave_cascade_exchanges_partner_clusters(self):
        state = build_state()
        _, leave, _, _ = make_ops(state)
        cluster_id = state.clusters.cluster_ids()[0]
        departing = state.clusters.get(cluster_id).member_list()[0]
        report = leave.execute(departing)
        # The exchanged-nodes count includes the cascading partner exchanges,
        # so it must exceed what a single cluster exchange could produce.
        assert report.exchanged_nodes >= len(state.clusters.get(cluster_id))

    def test_leave_without_cascade(self):
        state = build_state()
        randcl = RandCl(state, walk_mode=WalkMode.ORACLE)
        leave = LeaveOperation(state, randcl, cascade_exchanges=False)
        cluster_id = state.clusters.cluster_ids()[0]
        departing = state.clusters.get(cluster_id).member_list()[0]
        report = leave.execute(departing)
        assert report.exchanged_nodes <= len(state.clusters.get(cluster_id)) + 1

    def test_leave_triggers_merge_below_threshold(self):
        state = build_state(cluster_sizes=(8, 8, 8))
        merge_threshold = state.parameters.merge_threshold
        target = state.clusters.cluster_ids()[0]
        # Shrink the target cluster to exactly the merge threshold.
        while len(state.clusters.get(target)) > merge_threshold:
            victim = state.clusters.get(target).member_list()[0]
            state.clusters.remove_member(target, victim)
            state.nodes.mark_left(victim, 0)
        state.sync_all_overlay_weights()
        _, leave, _, _ = make_ops(state)
        departing = state.clusters.get(target).member_list()[0]
        state.nodes.mark_left(departing, 1)
        report = leave.execute(departing)
        assert "merge" in report.operations_flat()
        assert target not in state.clusters
        # All nodes remain clustered (the merged cluster's members re-joined).
        for node_id in state.nodes.active_nodes():
            assert state.clusters.contains_node(node_id)


class TestSplitOperation:
    def test_split_produces_two_clusters_of_half_size(self):
        state = build_state(cluster_sizes=(20, 8))
        _, _, split, _ = make_ops(state)
        target = state.clusters.cluster_ids()[0]
        report = split.execute(target)
        assert report.new_cluster is not None
        assert report.new_cluster in state.clusters
        old_size = len(state.clusters.get(target))
        new_size = len(state.clusters.get(report.new_cluster))
        assert old_size + new_size == 20
        assert abs(old_size - new_size) <= 1
        assert report.new_cluster in state.overlay.graph
        assert state.overlay.graph.is_connected()

    def test_split_tiny_cluster_rejected(self):
        state = build_state(cluster_sizes=(1, 8))
        _, _, split, _ = make_ops(state)
        with pytest.raises(ProtocolViolationError):
            split.execute(state.clusters.cluster_ids()[0])


class TestMergeOperation:
    def test_merge_dissolves_cluster_and_rehomes_members(self):
        state = build_state(cluster_sizes=(4, 10, 10))
        _, _, _, merge = make_ops(state)
        target = state.clusters.cluster_ids()[0]
        members = set(state.clusters.get(target).members)
        report = merge.execute(target)
        assert target not in state.clusters
        assert target not in state.overlay.graph
        for node_id in members:
            assert state.clusters.contains_node(node_id)
        # Each re-join is recorded as a triggered operation.
        assert len([r for r in report.triggered if r.operation == "join"]) == len(members)

    def test_merge_last_cluster_rejected(self):
        state = build_state(cluster_sizes=(6,))
        _, _, _, merge = make_ops(state)
        with pytest.raises(ProtocolViolationError):
            merge.execute(state.clusters.cluster_ids()[0])


class TestOperationReport:
    def test_operations_flat_nesting(self):
        from repro.core.operations import OperationReport

        root = OperationReport(operation="leave")
        child = OperationReport(operation="merge")
        grandchild = OperationReport(operation="join")
        child.absorb(grandchild)
        root.absorb(child)
        assert root.operations_flat() == ["leave", "merge", "join"]

    def test_absorb_accumulates_costs(self):
        from repro.core.operations import OperationReport

        root = OperationReport(operation="join", messages=10, rounds=2)
        child = OperationReport(operation="split", messages=5, rounds=1, walk_hops=3)
        root.absorb(child)
        assert root.messages == 15
        assert root.rounds == 3
        assert root.walk_hops == 3
        assert root.triggered == [child]
