"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import NowEngine, default_parameters
from repro.params import ProtocolParameters


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(12345)


@pytest.fixture
def small_params() -> ProtocolParameters:
    """Parameters sized for fast unit tests (small clusters, small overlay)."""
    return default_parameters(max_size=1024, k=2.0, l=2.0, alpha=0.1, tau=0.1, epsilon=0.05)


@pytest.fixture
def mid_params() -> ProtocolParameters:
    """Parameters for integration-style tests (larger clusters, safer margins)."""
    return default_parameters(max_size=4096, k=3.0, l=2.0, alpha=0.1, tau=0.15, epsilon=0.05)


@pytest.fixture
def small_engine(small_params) -> NowEngine:
    """A bootstrapped NOW engine with ~120 nodes and a low Byzantine fraction."""
    return NowEngine.bootstrap(small_params, initial_size=120, byzantine_fraction=0.1, seed=42)


@pytest.fixture
def mid_engine(mid_params) -> NowEngine:
    """A bootstrapped NOW engine with ~240 nodes, tau = 0.15."""
    return NowEngine.bootstrap(mid_params, initial_size=240, byzantine_fraction=0.15, seed=7)
