"""QuantileSketch: streaming quantile estimates vs exact quantiles."""

from __future__ import annotations

import random

import pytest

from repro.analysis.statistics import (
    DEFAULT_SAMPLE_CAP,
    QuantileSketch,
    RunningSummary,
    quantile,
)

QS = (0.5, 0.9, 0.95, 0.99)


def exact(values, q):
    return quantile(sorted(values), q)


class TestQuantileSketchExact:
    def test_empty_sketch_is_nan(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) != sketch.quantile(0.5)  # NaN

    def test_below_cap_quantiles_are_exact(self):
        rng = random.Random(7)
        values = [rng.uniform(0, 100) for _ in range(1000)]
        sketch = QuantileSketch(cap=4096)
        for value in values:
            sketch.push(value)
        assert sketch.exact
        for q in QS:
            assert sketch.quantile(q) == pytest.approx(exact(values, q))

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(cap=1)

    def test_quantiles_batch_matches_single(self):
        sketch = QuantileSketch(cap=64)
        for index in range(500):
            sketch.push(float(index))
        assert sketch.quantiles(QS) == [sketch.quantile(q) for q in QS]


class TestQuantileSketchDecimated:
    @pytest.mark.parametrize(
        "distribution",
        [
            lambda rng: rng.uniform(0.0, 1.0),
            lambda rng: rng.expovariate(1.0),
            lambda rng: rng.gauss(10.0, 2.0),
        ],
        ids=["uniform", "exponential", "normal"],
    )
    def test_decimated_estimates_track_exact_quantiles(self, distribution):
        rng = random.Random(42)
        values = [distribution(rng) for _ in range(50_000)]
        sketch = QuantileSketch(cap=2048)
        for value in values:
            sketch.push(value)
        assert not sketch.exact
        assert sketch.count == len(values)
        spread = exact(values, 0.99) - exact(values, 0.01)
        for q in (0.5, 0.9, 0.95):
            # The retained sample is an evenly spaced subsequence of an
            # i.i.d. stream, so estimates should land within a few percent
            # of the distribution's interdecile spread.
            assert abs(sketch.quantile(q) - exact(values, q)) < 0.1 * spread

    def test_memory_stays_bounded(self):
        sketch = QuantileSketch(cap=128)
        for index in range(100_000):
            sketch.push(float(index))
        assert len(sketch.series) <= 128
        assert sketch.stride >= 100_000 // 128

    def test_determinism_no_reservoir_randomness(self):
        first = QuantileSketch(cap=64)
        second = QuantileSketch(cap=64)
        rng = random.Random(3)
        values = [rng.random() for _ in range(10_000)]
        for value in values:
            first.push(value)
        for value in values:
            second.push(value)
        assert first.series == second.series
        assert first.stride == second.stride
        assert first.quantile(0.99) == second.quantile(0.99)

    def test_retained_points_are_stride_subsequence(self):
        sketch = QuantileSketch(cap=32)
        total = 1000
        for index in range(total):
            sketch.push(float(index))
        assert sketch.series == [
            float(index) for index in range(0, total, sketch.stride)
        ]


class TestRunningSummaryComposition:
    def test_running_summary_quantiles_come_from_the_sketch(self):
        summary = RunningSummary(sample_cap=DEFAULT_SAMPLE_CAP)
        sketch = QuantileSketch(cap=DEFAULT_SAMPLE_CAP)
        rng = random.Random(9)
        for _ in range(5000):
            value = rng.expovariate(0.5)
            summary.push(value)
            sketch.push(value)
        table = summary.summary()
        assert table.p50 == sketch.quantile(0.50)
        assert table.p90 == sketch.quantile(0.90)
        assert table.p99 == sketch.quantile(0.99)

    def test_series_contract_preserved_after_refactor(self):
        summary = RunningSummary(sample_cap=64)
        total = 1000
        for index in range(total):
            summary.push(float(index))
        assert summary.series_stride > 1
        assert summary.series == [
            float(index) for index in range(0, total, summary.series_stride)
        ]
