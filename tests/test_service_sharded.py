"""The sharded live-service backend: worker-count equivalence, read lane,
worker death, serve-trace replay.

The load-bearing property here is the determinism contract of
``docs/SERVICE.md``: a sharded session's responses, recorded trace and
composite state hash are a pure function of the admitted request sequence —
independent of the worker-process count (``workers=1`` is the inline
oracle) and of how the pump chunked requests into windows.  Reads ride a
separate RNG stream, so interleaving them must leave the write lane
bit-identical.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.service import (
    LiveEngineSession,
    ServiceFrontend,
    ShardedLiveSession,
    encode_frame,
    live_scenario,
    sharded_live_scenario,
)
from repro.service.protocol import ProtocolError
from repro.shard import ShardWorkerError, replay_sharded_trace
from repro.shard.worker import ProcessTransport
from repro.trace import TraceReader, replay_trace

#: Small enough to run fast, large enough to respect the per-shard slice
#: floor (two target clusters per shard at max_size=256).
SIZES = dict(initial_size=200, max_size=256)


def make_session(seed: int = 9, workers: int = 1, **overrides) -> ShardedLiveSession:
    params = dict(SIZES)
    params.update(overrides)
    return ShardedLiveSession(
        sharded_live_scenario(seed=seed, **params), workers=workers
    )


def pump(session: ShardedLiveSession, frames, chunk: int = 8):
    """Run a request stream the way the windowed frontend pump does.

    Splits the stream into pump batches of ``chunk`` requests, windows the
    writes of each batch, serves ready reads during the window and deferred
    ones after it.  Returns per-frame outcomes in stream order (result
    dicts, or the ``ProtocolError`` for rejected writes).
    """
    outcomes = [None] * len(frames)
    for base in range(0, len(frames), chunk):
        batch = list(enumerate(frames[base : base + chunk], start=base))
        writes = [(i, f) for i, f in batch if f["op"] in ("join", "leave")]
        reads = [(i, f) for i, f in batch if f["op"] not in ("join", "leave")]
        handle = session.begin_window([f for _, f in writes]) if writes else None
        deferred = []
        for i, frame in reads:
            if handle is not None and not session.read_ready(frame["op"]):
                deferred.append((i, frame))
            else:
                outcomes[i] = session.execute(frame)
        if handle is not None:
            for (i, _), outcome in zip(writes, session.finish_window(handle)):
                outcomes[i] = outcome
        for i, frame in deferred:
            outcomes[i] = session.execute(frame)
    return outcomes


def normalise(outcome):
    """One comparable value per outcome (errors compare by code+message).

    Status responses name the worker count and the recording path — the two
    fields that *should* differ across deployments of the same logical run —
    so those are dropped before comparison.
    """
    if isinstance(outcome, ProtocolError):
        return ("error", outcome.code, outcome.message)
    if isinstance(outcome, dict):
        return {k: v for k, v in outcome.items() if k not in ("workers", "recording")}
    return outcome


# The op alphabet the equivalence property draws request streams from.
OPS = st.sampled_from(
    ["join", "join", "byzantine-join", "leave", "sample", "status", "broadcast"]
)


def frames_from_ops(ops):
    frames = []
    for index, op in enumerate(ops):
        if op == "byzantine-join":
            frames.append({"op": "join", "id": index, "role": "byzantine"})
        else:
            frames.append({"op": op, "id": index})
    return frames


class TestWorkerCountEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(ops=st.lists(OPS, min_size=1, max_size=40), seed=st.integers(1, 50))
    def test_responses_trace_and_hash_identical_across_worker_counts(
        self, tmp_path_factory, ops, seed
    ):
        """W in {1, 2, 4}: same requests -> same bits, W=1 is the oracle."""
        frames = frames_from_ops(ops)
        results = {}
        for workers in (1, 2, 4):
            path = str(
                tmp_path_factory.mktemp("eq") / f"w{workers}.jsonl"
            )
            session = make_session(seed=seed, workers=workers)
            try:
                session.attach_trace(path, index_every=10)
                outcomes = pump(session, frames, chunk=8)
                state = session.state_hash()
            finally:
                session.close()
            with open(path, "rb") as handle:
                results[workers] = (
                    [normalise(o) for o in outcomes],
                    state,
                    handle.read(),
                )
        assert results[2] == results[1]
        assert results[4] == results[1]

    def test_chunking_does_not_change_events_or_hash(self):
        """Windows are barrier-aligned: pump chunk size is invisible."""
        frames = frames_from_ops(["join"] * 30 + ["leave"] * 10 + ["join"] * 30)
        streams = {}
        for chunk in (1, 7, 64):
            session = make_session(seed=4)
            try:
                outcomes = pump(session, frames, chunk=chunk)
                streams[chunk] = ([normalise(o) for o in outcomes], session.state_hash())
            finally:
                session.close()
        assert streams[7] == streams[1]
        assert streams[64] == streams[1]

    def test_writes_match_classic_single_engine_session(self):
        """The classic session is the oracle for the write lane's responses.

        Joins and leaves (anonymous ones included — both backends draw the
        leaver from the same ``seed + 4`` stream over the same registry
        sampling array) must agree on the assigned node, the time step and
        the network size.  Cluster observables legitimately differ: shard
        engines partition the population.
        """
        frames = frames_from_ops(
            ["join"] * 40 + ["leave", "join", "leave", "byzantine-join"] * 10
        )
        classic = LiveEngineSession(live_scenario(seed=11, **SIZES))
        expected = []
        for frame in frames:
            result = classic.execute(frame)
            expected.append(
                (result["node_id"], result["time_step"], result["network_size"])
            )
        classic.close()

        session = make_session(seed=11)
        try:
            outcomes = pump(session, frames, chunk=16)
        finally:
            session.close()
        got = [(o["node_id"], o["time_step"], o["network_size"]) for o in outcomes]
        assert got == expected


class TestReadLane:
    def test_interleaved_reads_leave_write_lane_bit_identical(self, tmp_path):
        """Samples between writes perturb neither the trace nor the hash.

        The frontend drains the two lanes separately, so a write batch is
        composed of writes only — reads that arrived among them are served
        around the same window.  With identical write batching, the mixed
        run's trace must equal the writes-only run's trace byte for byte.
        """
        writes = frames_from_ops(["join"] * 25 + ["leave"] * 5 + ["join"] * 10)
        # Reads attached to the write index they arrive after.
        reads_after = {
            index: [{"op": "sample", "id": f"r{index}"}]
            + ([{"op": "status", "id": f"s{index}"}] if index % 7 == 0 else [])
            for index in range(0, len(writes), 3)
        }

        def run(with_reads: bool, path: str):
            session = make_session(seed=21)
            write_outcomes = []
            try:
                session.attach_trace(path, index_every=10)
                for base in range(0, len(writes), 8):
                    batch = writes[base : base + 8]
                    reads = []
                    if with_reads:
                        for index in range(base, base + len(batch)):
                            reads.extend(reads_after.get(index, ()))
                    handle = session.begin_window(batch)
                    deferred = []
                    for frame in reads:
                        if session.read_ready(frame["op"]):
                            session.execute(frame)
                        else:
                            deferred.append(frame)
                    write_outcomes.extend(session.finish_window(handle))
                    for frame in deferred:
                        session.execute(frame)
                state = session.state_hash()
            finally:
                session.close()
            with open(path, "rb") as handle:
                return [normalise(o) for o in write_outcomes], state, handle.read()

        plain = run(False, str(tmp_path / "plain.jsonl"))
        mixed = run(True, str(tmp_path / "mixed.jsonl"))
        assert mixed == plain

    def test_status_serves_during_inflight_window_sample_defers(self):
        """status/ping never block on a window; a stale model defers sample."""
        session = make_session(seed=5)
        try:
            handle = session.begin_window(
                [{"op": "join", "id": i} for i in range(6)]
            )
            # Window dispatched, not collected: status must not round-trip.
            assert session.read_ready("status") and session.read_ready("ping")
            status = session.execute({"op": "status"})
            assert status["network_size"] == SIZES["initial_size"] + 6
            assert not session.read_ready("sample")
            assert not session.read_ready("broadcast")
            session.finish_window(handle)
            # Boundary: the model may refresh now (one worker round trip).
            sample = session.execute({"op": "sample"})
            assert session.read_ready("sample")
            assert sample["messages"] > 0 and sample["rounds"] > 0
        finally:
            session.close()

    def test_reads_draw_from_their_own_stream(self):
        """The read RNG is private: reads do not consume the write stream."""
        plain = make_session(seed=31)
        mixed = make_session(seed=31)
        try:
            frames = frames_from_ops(["join"] * 10 + ["leave"] * 4)
            plain_out = pump(plain, frames, chunk=4)
            mixed_out = []
            for frame in frames:
                mixed.execute({"op": "sample"})
                mixed_out.append(mixed.execute(frame))
            # Anonymous-leave picks agree despite the interleaved sampling.
            assert [normalise(o) for o in mixed_out] == [
                normalise(o) for o in plain_out
            ]
        finally:
            plain.close()
            mixed.close()


class TestShardedSessionValidation:
    def test_rejects_scenario_with_workload(self):
        scenario = sharded_live_scenario(seed=1, **SIZES)
        scenario.workload = {"kind": "uniform"}
        with pytest.raises(ConfigurationError, match="workload"):
            ShardedLiveSession(scenario)

    def test_rejects_unsharded_scenario(self):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedLiveSession(live_scenario(seed=1, **SIZES))

    def test_join_at_max_size_fails_cleanly(self):
        session = make_session(seed=2, initial_size=240, max_size=256)
        try:
            outcomes = pump(session, [{"op": "join", "id": i} for i in range(40)])
            errors = [o for o in outcomes if isinstance(o, ProtocolError)]
            applied = [o for o in outcomes if not isinstance(o, ProtocolError)]
            assert len(applied) == 16 and len(errors) == 24
            assert all(e.code == "failed" for e in errors)
            assert session.network_size == 256
        finally:
            session.close()

    def test_contact_cluster_join_rejected(self):
        session = make_session(seed=2)
        try:
            with pytest.raises(ProtocolError, match="contact_cluster"):
                session.execute({"op": "join", "contact_cluster": 0})
        finally:
            session.close()

    def test_named_leave_then_rejoin_round_trip(self):
        session = make_session(seed=2)
        try:
            joined = session.execute({"op": "join"})
            gone = session.execute({"op": "leave", "node_id": joined["node_id"]})
            assert gone["node_id"] == joined["node_id"]
            with pytest.raises(ProtocolError, match="not active"):
                session.execute({"op": "leave", "node_id": joined["node_id"]})
            back = session.execute({"op": "join", "node_id": joined["node_id"]})
            assert back["node_id"] == joined["node_id"]
        finally:
            session.close()


class TestServeTraceReplay:
    def test_recorded_sharded_serve_trace_replays_bit_identically(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        session = make_session(seed=13, workers=2)
        try:
            session.attach_trace(path, index_every=20)
            pump(
                session,
                frames_from_ops(
                    ["join"] * 50 + ["leave"] * 20 + ["sample"] * 5 + ["join"] * 30
                ),
                chunk=16,
            )
            applied = session.events_applied
            recorded_hash = session.state_hash()
        finally:
            session.close()

        report = replay_trace(path)
        assert report.ok
        assert applied > 90  # a handful of tail joins rejected at max_size
        assert report.events_applied == applied
        assert report.hash_checks >= 1
        assert report.final_hash == recorded_hash

        report_direct = replay_sharded_trace(path)
        assert report_direct.ok and report_direct.final_hash == recorded_hash

    def test_replay_detects_tampered_event(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        session = make_session(seed=13)
        try:
            session.attach_trace(path)
            pump(session, frames_from_ops(["join"] * 20))
        finally:
            session.close()
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        frame = json.loads(lines[3])
        assert frame["t"] == "ev"
        frame["sz"] += 1  # a recorded observable the replay must re-derive
        lines[3] = json.dumps(frame)
        open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
        report = replay_trace(path)
        assert not report.ok and report.divergence is not None


async def _connect(frontend):
    return await asyncio.open_connection("127.0.0.1", frontend.port)


async def _rpc(reader, writer, frame, timeout=10):
    writer.write(encode_frame(frame))
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert line, "server closed the connection"
    return json.loads(line)


class TestWorkerDeath:
    def test_worker_dying_mid_load_fails_requests_and_seals_trace(self, tmp_path):
        """Kill a worker under live load: every in-flight request is answered
        with error code ``failed`` (never a hung connection), the trace is
        sealed crashed-shape, and the frontend's stop re-raises the death."""
        path = str(tmp_path / "crash.jsonl")

        async def scenario():
            session = ShardedLiveSession(
                sharded_live_scenario(seed=17, **SIZES), workers=2
            )
            session.attach_trace(path)
            frontend = ServiceFrontend(session, port=0)
            await frontend.start()
            reader, writer = await _connect(frontend)
            # Prove the service is healthy, then kill one worker process.
            first = await _rpc(reader, writer, {"op": "join", "id": "warm"})
            assert first["ok"]
            transport = session.coordinator._transports[0]
            assert isinstance(transport, ProcessTransport)
            transport._process.kill()
            transport._process.join(timeout=5)
            # Requests racing the death must all be *answered*.
            for index in range(12):
                writer.write(encode_frame({"op": "join", "id": index}))
            await writer.drain()
            responses = []
            for _ in range(12):
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                assert line, "connection hung instead of failing the request"
                responses.append(json.loads(line))
            failed = [r for r in responses if not r["ok"]]
            assert failed, "worker death produced no failed responses"
            assert all(r["error"] in ("failed", "shutting_down") for r in failed)
            writer.close()
            with pytest.raises(ShardWorkerError):
                await frontend.stop()
            assert session.closed

        asyncio.run(scenario())
        # The crash path flushes but writes no end frame: the crashed-run
        # shape replay tolerates up to the last complete frame.
        trace = TraceReader(path)
        assert trace.end_frame() is None
        assert replay_trace(path).ok
