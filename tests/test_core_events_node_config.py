"""Unit tests for churn events, node descriptors and engine configuration edges."""

from __future__ import annotations

import pytest

from repro import ChurnEvent, ChurnKind, EngineConfig, NowEngine, default_parameters
from repro.errors import NetworkSizeError
from repro.network.node import NodeDescriptor, NodeRole, NodeState
from repro.walks.sampler import WalkMode


class TestChurnEvent:
    def test_join_constructor_defaults(self):
        event = ChurnEvent.join()
        assert event.kind is ChurnKind.JOIN
        assert event.role is NodeRole.HONEST
        assert event.node_id is None
        assert event.contact_cluster is None

    def test_join_constructor_with_targeting(self):
        event = ChurnEvent.join(role=NodeRole.BYZANTINE, node_id=9, contact_cluster=2)
        assert event.role is NodeRole.BYZANTINE
        assert event.node_id == 9
        assert event.contact_cluster == 2

    def test_leave_constructor(self):
        event = ChurnEvent.leave(5)
        assert event.kind is ChurnKind.LEAVE
        assert event.node_id == 5

    def test_events_are_immutable(self):
        event = ChurnEvent.join()
        with pytest.raises(Exception):
            event.node_id = 3  # type: ignore[misc]

    def test_kind_string_value(self):
        assert str(ChurnKind.JOIN) == "join"
        assert str(ChurnKind.LEAVE) == "leave"


class TestNodeDescriptor:
    def test_defaults(self):
        descriptor = NodeDescriptor(node_id=1)
        assert descriptor.is_honest
        assert not descriptor.is_byzantine
        assert descriptor.is_active
        assert descriptor.state is NodeState.ACTIVE

    def test_mark_left_and_crashed(self):
        descriptor = NodeDescriptor(node_id=1)
        descriptor.mark_left(7)
        assert descriptor.state is NodeState.LEFT
        assert descriptor.left_at == 7
        other = NodeDescriptor(node_id=2)
        other.mark_crashed(9)
        assert other.state is NodeState.CRASHED
        assert not other.is_active

    def test_role_strings(self):
        assert str(NodeRole.HONEST) == "honest"
        assert str(NodeState.LEFT) == "left"

    def test_attributes_bag(self):
        descriptor = NodeDescriptor(node_id=1, attributes={"region": "eu"})
        assert descriptor.attributes["region"] == "eu"


class TestEngineConfig:
    def test_defaults_match_paper_protocol(self):
        config = EngineConfig()
        assert config.walk_mode is WalkMode.ORACLE
        assert config.cascade_exchanges is True
        assert config.strict_compromise is False
        assert config.record_history is True
        assert config.enforce_size_range is False

    def test_enforce_size_range_raises_outside_band(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05, min_size=130)
        engine = NowEngine.bootstrap(
            params,
            initial_size=130,
            byzantine_fraction=0.1,
            seed=1,
            config=EngineConfig(enforce_size_range=True),
        )
        # One leave drops the size below the configured minimum of 130.
        with pytest.raises(NetworkSizeError):
            engine.leave(engine.random_member())

    def test_enforce_size_range_allows_inside_band(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05, min_size=100)
        engine = NowEngine.bootstrap(
            params,
            initial_size=130,
            byzantine_fraction=0.1,
            seed=1,
            config=EngineConfig(enforce_size_range=True),
        )
        engine.leave(engine.random_member())
        engine.join()
        assert engine.network_size == 130
