"""Unit tests for the Phase-King consensus and the agreement interface."""

from __future__ import annotations

import random

import pytest

from repro.agreement.interface import (
    AgreementOutcome,
    check_agreement,
    check_validity,
)
from repro.agreement.phase_king import (
    PhaseKingConsensus,
    equivocating_strategy,
    silent_strategy,
)


class TestInterfaceHelpers:
    def test_check_agreement_empty(self):
        assert check_agreement({})

    def test_check_agreement_true_false(self):
        assert check_agreement({1: "a", 2: "a"})
        assert not check_agreement({1: "a", 2: "b"})

    def test_check_validity(self):
        assert check_validity({1: 0, 2: 0}, {1: 0, 2: 1})
        assert not check_validity({1: 5}, {1: 0, 2: 1})

    def test_outcome_succeeded_property(self):
        assert AgreementOutcome(agreement=True, validity=True).succeeded
        assert not AgreementOutcome(agreement=True, validity=False).succeeded


class TestPhaseKingNoFaults:
    def test_unanimous_inputs_decide_that_value(self):
        protocol = PhaseKingConsensus(random.Random(0))
        inputs = {node: 1 for node in range(7)}
        outcome = protocol.decide(inputs, byzantine=set())
        assert outcome.agreement
        assert outcome.validity
        assert outcome.decided_value == 1

    def test_mixed_inputs_reach_agreement(self):
        protocol = PhaseKingConsensus(random.Random(0))
        inputs = {node: node % 2 for node in range(9)}
        outcome = protocol.decide(inputs, byzantine=set())
        assert outcome.agreement
        assert outcome.validity
        assert outcome.decided_value in (0, 1)

    def test_empty_inputs(self):
        protocol = PhaseKingConsensus(random.Random(0))
        outcome = protocol.decide({}, byzantine=set())
        assert outcome.agreement and outcome.validity

    def test_messages_and_rounds_counted(self):
        protocol = PhaseKingConsensus(random.Random(0))
        inputs = {node: 0 for node in range(6)}
        outcome = protocol.decide(inputs, byzantine=set())
        # one phase (f=0): all-to-all (6*5=30) plus the king's broadcast (5).
        assert outcome.messages == 35
        assert outcome.rounds == 2


class TestPhaseKingWithByzantine:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_agreement_with_equivocating_minority(self, seed):
        """n > 4f: 13 nodes, 2 Byzantine equivocators."""
        rng = random.Random(seed)
        protocol = PhaseKingConsensus(rng, byzantine_strategy=equivocating_strategy(rng))
        inputs = {node: node % 2 for node in range(13)}
        byzantine = {3, 7}
        outcome = protocol.decide(inputs, byzantine)
        assert outcome.agreement
        assert outcome.validity

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_agreement_with_silent_byzantine(self, seed):
        rng = random.Random(seed)
        protocol = PhaseKingConsensus(rng, byzantine_strategy=silent_strategy())
        inputs = {node: 1 for node in range(9)}
        byzantine = {0, 8}
        outcome = protocol.decide(inputs, byzantine)
        assert outcome.agreement
        assert outcome.decided_value == 1  # unanimous honest inputs must win

    def test_unanimous_honest_value_survives_attack(self):
        """Validity: when all honest nodes propose v, the decision is v."""
        for seed in range(5):
            rng = random.Random(seed)
            protocol = PhaseKingConsensus(rng, byzantine_strategy=equivocating_strategy(rng))
            inputs = {node: 1 for node in range(12)}
            byzantine = {2, 5}
            outcome = protocol.decide(inputs, byzantine)
            assert outcome.agreement
            assert outcome.decided_value == 1

    def test_byzantine_decisions_excluded_from_output(self):
        rng = random.Random(1)
        protocol = PhaseKingConsensus(rng)
        inputs = {node: 0 for node in range(8)}
        byzantine = {1}
        outcome = protocol.decide(inputs, byzantine)
        assert 1 not in outcome.decisions
        assert set(outcome.decisions) == set(range(8)) - {1}

    def test_tolerated_fraction_reported(self):
        protocol = PhaseKingConsensus(random.Random(0))
        assert protocol.tolerated_fraction() == pytest.approx(0.25)
        assert protocol.supports(participant_count=13, byzantine_count=3)
        assert not protocol.supports(participant_count=12, byzantine_count=3)

    def test_cost_scales_with_fault_bound(self):
        protocol = PhaseKingConsensus(random.Random(0))
        inputs = {node: node % 2 for node in range(16)}
        cheap = protocol.decide(inputs, byzantine=set())
        costly = protocol.decide(inputs, byzantine={0, 1, 2})
        assert costly.rounds > cheap.rounds
        assert costly.messages > cheap.messages
