"""Unit tests for the invariant checker and the inter-cluster message rule."""

from __future__ import annotations

import random

import pytest

from repro.core.intercluster import ClusterMessageRule, InterClusterChannel
from repro.core.invariants import check_invariants
from repro.core.state import SystemState
from repro.network.metrics import CommunicationMetrics
from repro.network.node import NodeRole
from repro.params import ProtocolParameters


def build_state(compositions, seed=2):
    """``compositions`` is a list of (honest_count, byzantine_count) per cluster."""
    params = ProtocolParameters(max_size=1024, k=2.0, tau=0.25, epsilon=0.05)
    state = SystemState(parameters=params, rng=random.Random(seed))
    cluster_ids = []
    for honest_count, byzantine_count in compositions:
        members = [state.nodes.register().node_id for _ in range(honest_count)]
        members += [
            state.nodes.register(role=NodeRole.BYZANTINE).node_id
            for _ in range(byzantine_count)
        ]
        cluster_ids.append(state.clusters.create_cluster(members).cluster_id)
    weights = [float(len(state.clusters.get(cid))) for cid in cluster_ids]
    state.overlay.bootstrap(cluster_ids, weights)
    return state


class TestInvariantChecker:
    def test_clean_state_passes(self):
        state = build_state([(18, 2), (18, 2), (18, 2)])
        report = check_invariants(state)
        assert report.holds
        assert report.violations == []
        assert report.cluster_count == 3
        assert report.network_size == 60
        assert report.overlay_connected

    def test_summary_format(self):
        state = build_state([(18, 2), (18, 2)])
        summary = check_invariants(state).summary()
        assert "OK" in summary
        assert "n=40" in summary

    def test_detects_compromised_cluster(self):
        state = build_state([(10, 10), (18, 2)])
        report = check_invariants(state)
        assert not report.holds
        assert report.compromised_clusters
        assert report.worst_byzantine_fraction == pytest.approx(0.5)

    def test_detects_departed_member(self):
        state = build_state([(18, 2), (18, 2)])
        member = state.clusters.get(state.clusters.cluster_ids()[0]).member_list()[0]
        state.nodes.mark_left(member, time_step=1)
        report = check_invariants(state)
        assert any("departed" in violation for violation in report.violations)

    def test_detects_unassigned_active_node(self):
        state = build_state([(18, 2)])
        state.nodes.register()  # active but never placed in a cluster
        report = check_invariants(state)
        assert any("not assigned" in violation for violation in report.violations)

    def test_detects_oversized_cluster(self):
        state = build_state([(18, 2)])
        big = [(state.nodes.register().node_id) for _ in range(60)]
        cluster_id = state.clusters.create_cluster(big).cluster_id
        state.overlay.add_vertex(cluster_id, weight=60.0, anchor=state.clusters.cluster_ids()[0])
        report = check_invariants(state)
        assert any("split threshold" in violation for violation in report.violations)

    def test_detects_overlay_weight_mismatch(self):
        state = build_state([(18, 2), (18, 2)])
        cluster_id = state.clusters.cluster_ids()[0]
        state.overlay.update_weight(cluster_id, 999.0)
        report = check_invariants(state)
        assert any("overlay weight" in violation for violation in report.violations)

    def test_detects_missing_overlay_vertex(self):
        state = build_state([(18, 2), (18, 2)])
        extra = [state.nodes.register().node_id for _ in range(20)]
        state.clusters.create_cluster(extra)  # never added to the overlay
        report = check_invariants(state, check_size_bounds=False)
        assert any("no overlay vertex" in violation for violation in report.violations)

    def test_selective_checks_can_be_disabled(self):
        state = build_state([(10, 10)])
        report = check_invariants(state, check_honest_majority=False)
        assert all("Byzantine" not in violation for violation in report.violations)


class TestClusterMessageRule:
    def test_honest_supermajority_can_send(self):
        state = build_state([(15, 5)])
        rule = ClusterMessageRule(state)
        cluster_id = state.clusters.cluster_ids()[0]
        assert rule.can_send_validly(cluster_id)
        assert not rule.can_forge(cluster_id)
        assert rule.honest_count(cluster_id) == 15
        assert rule.byzantine_count(cluster_id) == 5

    def test_captured_cluster_can_forge(self):
        state = build_state([(4, 16)])
        rule = ClusterMessageRule(state)
        cluster_id = state.clusters.cluster_ids()[0]
        assert not rule.can_send_validly(cluster_id)
        assert rule.can_forge(cluster_id)

    def test_exact_half_cannot_do_either(self):
        state = build_state([(10, 10)])
        rule = ClusterMessageRule(state)
        cluster_id = state.clusters.cluster_ids()[0]
        assert not rule.can_send_validly(cluster_id)
        assert not rule.can_forge(cluster_id)


class TestInterClusterChannel:
    def test_send_accepted_between_honest_clusters(self):
        state = build_state([(15, 5), (15, 5)])
        metrics = CommunicationMetrics()
        channel = InterClusterChannel(state, metrics=metrics)
        first, second = state.clusters.cluster_ids()[:2]
        outcome = channel.send(first, second, payload="hello")
        assert outcome.accepted
        assert not outcome.forged
        assert outcome.payload == "hello"
        assert outcome.messages == 20 * 20
        assert metrics.messages == outcome.messages

    def test_send_from_captured_cluster_forges(self):
        state = build_state([(3, 17), (15, 5)])
        channel = InterClusterChannel(state)
        first, second = state.clusters.cluster_ids()[:2]
        outcome = channel.send(first, second, payload="honest", adversarial_payload="forged")
        assert not outcome.accepted
        assert outcome.forged
        assert outcome.payload == "forged"

    def test_send_from_deadlocked_cluster_delivers_nothing(self):
        state = build_state([(10, 10), (15, 5)])
        channel = InterClusterChannel(state)
        first, second = state.clusters.cluster_ids()[:2]
        outcome = channel.send(first, second, payload="honest", adversarial_payload="forged")
        assert not outcome.accepted
        assert not outcome.forged
        assert outcome.payload is None

    def test_broadcast_to_neighbours(self):
        state = build_state([(15, 5), (15, 5), (15, 5)])
        channel = InterClusterChannel(state)
        origin = state.clusters.cluster_ids()[0]
        outcomes = channel.broadcast_to_neighbours(origin, payload=42)
        neighbour_count = len(state.overlay.graph.neighbours(origin))
        assert len(outcomes) == neighbour_count
        assert all(outcome.accepted for outcome in outcomes)
