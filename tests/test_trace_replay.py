"""Tests for the trace log, replay verification and trace diffing."""

from __future__ import annotations

import json
import os

import pytest

from repro import Scenario
from repro.core.events import ChurnKind
from repro.errors import ConfigurationError
from repro.network.node import NodeRole
from repro.scenarios import CorruptionTrajectoryProbe
from repro.trace import (
    ReplayEngine,
    TraceReader,
    churn_event_from_frame,
    record_scenario,
    replay_trace,
    state_hash,
    trace_diff,
)

PARAMS = dict(max_size=1024, initial_size=100, tau=0.1, k=2.0, seed=7)


def small_scenario(**overrides) -> Scenario:
    fields = dict(PARAMS)
    fields.update(overrides)
    return Scenario(name=fields.pop("name", "trace-test"), **fields)


def record(tmp_path, name="run.jsonl", index_every=20, probes=(), **overrides):
    scenario = small_scenario(**overrides)
    path = os.path.join(str(tmp_path), name)
    session = record_scenario(
        scenario, trace_path=path, index_every=index_every, probes=list(probes)
    )
    return path, session


class TestTraceLog:
    def test_trace_structure(self, tmp_path):
        path, session = record(tmp_path, steps=50, index_every=10)
        reader = TraceReader(path)
        assert reader.header["f"] == "repro-trace"
        assert reader.scenario["seed"] == PARAMS["seed"]
        assert reader.event_count() == session.result.events
        assert len(reader.index_frames()) == session.result.events // 10
        end = reader.end_frame()
        assert end is not None
        assert end["h"] == session.final_state_hash

    def test_event_frames_carry_input_event_and_observables(self, tmp_path):
        path, _ = record(tmp_path, steps=30)
        for frame in TraceReader(path).events():
            event = churn_event_from_frame(frame)
            assert event.kind in (ChurnKind.JOIN, ChurnKind.LEAVE)
            assert event.role in (NodeRole.HONEST, NodeRole.BYZANTINE)
            assert frame["sz"] > 0 and frame["cl"] > 0
            assert 0.0 <= frame["w"] <= 1.0

    def test_reader_tolerates_truncated_tail(self, tmp_path):
        path, _ = record(tmp_path, steps=30)
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        cut = os.path.join(str(tmp_path), "cut.jsonl")
        with open(cut, "w", encoding="utf-8") as handle:
            handle.write(content[: int(len(content) * 0.7)])  # kill mid-line
        reader = TraceReader(cut)
        assert reader.event_count() > 0
        assert reader.end_frame() is None
        # The surviving prefix still replays and verifies.
        assert replay_trace(cut).ok

    def test_reader_rejects_non_trace_files(self, tmp_path):
        path = os.path.join(str(tmp_path), "bogus.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"t":"nope"}\n')
        with pytest.raises(ConfigurationError):
            TraceReader(path)
        with pytest.raises(ConfigurationError):
            TraceReader(os.path.join(str(tmp_path), "missing.jsonl"))


class TestReplay:
    def test_record_then_replay_verifies_and_matches_final_hash(self, tmp_path):
        path, session = record(tmp_path, steps=80, index_every=15)
        report = replay_trace(path)
        assert report.ok, report.summary()
        assert report.events_applied == session.result.events
        assert report.hash_checks == session.result.events // 15
        assert report.final_hash == session.final_state_hash
        assert report.recorded_final_hash == session.final_state_hash

    def test_probe_outputs_are_bit_identical_across_recordings(self, tmp_path):
        probe_a = CorruptionTrajectoryProbe()
        path_a, _ = record(tmp_path, name="a.jsonl", steps=60, probes=[probe_a])
        probe_b = CorruptionTrajectoryProbe()
        path_b, _ = record(tmp_path, name="b.jsonl", steps=60, probes=[probe_b])
        assert probe_a.result() == probe_b.result()
        assert not trace_diff(path_a, path_b).diverged

    def test_replay_works_for_adversarial_and_simulated_runs(self, tmp_path):
        path, _ = record(
            tmp_path,
            name="adv.jsonl",
            steps=60,
            tau=0.2,
            adversary={"kind": "join_leave", "target_cluster": "first"},
            adversary_weight=0.5,
        )
        assert replay_trace(path).ok
        path, _ = record(
            tmp_path,
            name="sim.jsonl",
            steps=40,
            engine_options={"walk_mode": "simulated"},
        )
        assert replay_trace(path).ok

    def test_replay_detects_tampered_event(self, tmp_path):
        path, _ = record(tmp_path, steps=40, index_every=10)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "ev" and frame["i"] == 20:
                frame["sz"] += 1  # corrupt one recorded observable
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        bad = os.path.join(str(tmp_path), "tampered.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        report = replay_trace(bad)
        assert not report.ok
        assert report.divergence["step"] == 20
        assert "network size" in report.divergence["reason"]

    def test_non_stopping_replay_reports_first_divergence(self, tmp_path):
        path, _ = record(tmp_path, steps=40, index_every=1000)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "ev" and frame["i"] in (10, 25):
                frame["sz"] += 1
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        bad = os.path.join(str(tmp_path), "two-tampers.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        report = ReplayEngine(bad).run(stop_on_divergence=False)
        assert not report.ok
        assert report.divergence["step"] == 10  # the FIRST mismatch, not the last
        assert report.events_applied == 40  # kept going to the end

    def test_replay_detects_hash_mismatch_from_tampered_index(self, tmp_path):
        path, _ = record(tmp_path, steps=40, index_every=10)
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        tampered = []
        for line in lines:
            frame = json.loads(line)
            if frame.get("t") == "x":
                frame["h"] = "0" * 64
            tampered.append(json.dumps(frame, sort_keys=True, separators=(",", ":")))
        bad = os.path.join(str(tmp_path), "badhash.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        report = replay_trace(bad)
        assert not report.ok
        assert "state hash mismatch" in report.divergence["reason"]

    def test_replay_without_scenario_needs_engine(self, tmp_path):
        scenario = small_scenario(steps=10)
        path = os.path.join(str(tmp_path), "bare.jsonl")
        from repro.trace import TraceProbe

        engine = scenario.build_engine()
        probe = TraceProbe(path, index_every=5)  # no scenario in the header
        runner = scenario.build_runner(probes=[probe], engine=engine)
        runner.run(10)
        probe.finalize(engine)
        with pytest.raises(ConfigurationError):
            ReplayEngine(path)
        fresh = small_scenario(steps=10).build_engine()
        assert ReplayEngine(path, engine=fresh).run().ok


class TestTraceDiff:
    def test_identical_runs_do_not_diverge(self, tmp_path):
        path_a, _ = record(tmp_path, name="a.jsonl", steps=50)
        path_b, _ = record(tmp_path, name="b.jsonl", steps=50)
        diff = trace_diff(path_a, path_b)
        assert not diff.diverged
        assert diff.compared_events == 50

    def test_different_seeds_diverge_at_first_event(self, tmp_path):
        path_a, _ = record(tmp_path, name="a.jsonl", steps=50)
        path_b, _ = record(tmp_path, name="b.jsonl", steps=50, seed=8)
        diff = trace_diff(path_a, path_b)
        assert diff.diverged
        assert diff.step == 1
        assert "headers record different scenarios" in diff.notes

    def test_length_mismatch_reports_first_extra_event(self, tmp_path):
        path_a, _ = record(tmp_path, name="a.jsonl", steps=50)
        path_b, _ = record(tmp_path, name="b.jsonl", steps=30)
        diff = trace_diff(path_a, path_b)
        assert diff.diverged
        assert "event counts differ" in diff.reason
        assert diff.compared_events == 30

    def test_state_hash_of_equal_engines_is_equal(self):
        scenario = small_scenario(steps=0)
        assert state_hash(scenario.build_engine()) == state_hash(scenario.build_engine())
