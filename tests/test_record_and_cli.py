"""Unit tests for run recording/serialisation and the command-line interface."""

from __future__ import annotations

import json
import random

import pytest

from repro import NowEngine, default_parameters
from repro.baselines import NoShuffleEngine
from repro.cli import build_parser, main
from repro.workloads import UniformChurn, drive
from repro.workloads.record import RunRecord, compare_runs, load_run, parameters_to_dict

try:
    import numpy as _np
except ImportError:
    _np = None

requires_numpy = pytest.mark.skipif(
    _np is None, reason="requires numpy (least-squares complexity fits)"
)


@pytest.fixture
def recorded_engine():
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    engine = NowEngine.bootstrap(params, initial_size=120, byzantine_fraction=0.1, seed=3)
    drive(engine, UniformChurn(random.Random(4), byzantine_join_fraction=0.1), steps=15)
    return engine


class TestRunRecord:
    def test_from_engine_captures_every_step(self, recorded_engine):
        record = RunRecord.from_engine(recorded_engine, label="demo")
        assert record.label == "demo"
        assert len(record.steps) == len(recorded_engine.history) == 15
        assert record.metadata["final_network_size"] == recorded_engine.network_size
        assert record.parameters["max_size"] == 1024

    def test_trajectory_views(self, recorded_engine):
        record = RunRecord.from_engine(recorded_engine, label="demo")
        worst = record.worst_fractions()
        sizes = record.network_sizes()
        assert len(worst) == len(sizes) == 15
        assert all(0.0 <= value <= 1.0 for value in worst)
        summary = record.corruption_summary()
        assert summary.count == 15
        assert record.unsafe_steps() == summary.steps_above_threshold

    def test_operation_details_recorded(self, recorded_engine):
        record = RunRecord.from_engine(recorded_engine, label="demo")
        step = record.steps[0]
        assert step["operation"]["messages"] > 0
        assert step["operation"]["name"] in ("join", "leave")
        assert step["event_kind"] in ("join", "leave")

    def test_baseline_history_is_recordable(self):
        params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
        baseline = NoShuffleEngine.bootstrap(params, initial_size=100, seed=5)
        baseline.join()
        baseline.leave(baseline.random_member())
        record = RunRecord.from_engine(baseline, label="baseline")
        assert len(record.steps) == 2
        assert "operation" not in record.steps[0]

    def test_json_round_trip(self, recorded_engine, tmp_path):
        record = RunRecord.from_engine(recorded_engine, label="demo", metadata={"note": "x"})
        path = tmp_path / "run.json"
        record.save(str(path))
        loaded = load_run(str(path))
        assert loaded.label == record.label
        assert loaded.steps == record.steps
        assert loaded.metadata["note"] == "x"
        # The file itself is valid, plain JSON.
        parsed = json.loads(path.read_text())
        assert parsed["label"] == "demo"

    def test_compare_runs(self, recorded_engine):
        first = RunRecord.from_engine(recorded_engine, label="a")
        second = RunRecord.from_engine(recorded_engine, label="b")
        rows = compare_runs([first, second])
        assert [row["label"] for row in rows] == ["a", "b"]
        assert all("mean_worst" in row for row in rows)

    def test_parameters_to_dict_contains_derived_values(self):
        params = default_parameters(max_size=2048, k=3.0, tau=0.1, epsilon=0.05)
        data = parameters_to_dict(params)
        assert data["target_cluster_size"] == params.target_cluster_size
        assert data["split_threshold"] == params.split_threshold


class TestCli:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_churn_command_runs_and_saves(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        code = main(
            [
                "--seed",
                "2",
                "churn",
                "--max-size",
                "1024",
                "--initial-size",
                "120",
                "--tau",
                "0.1",
                "--steps",
                "12",
                "--k",
                "2.0",
                "--save",
                str(out_file),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "NOW under uniform churn" in captured
        assert "structural invariants: OK" in captured
        assert out_file.exists()
        assert load_run(str(out_file)).steps

    def test_attack_command_reports_both_schemes(self, capsys):
        code = main(
            [
                "--seed",
                "3",
                "attack",
                "--max-size",
                "1024",
                "--initial-size",
                "120",
                "--tau",
                "0.2",
                "--steps",
                "60",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "NOW (full exchange)" in captured
        assert "no shuffling" in captured

    @requires_numpy
    def test_costs_command_fits_exponents(self, capsys):
        code = main(
            [
                "costs",
                "--sizes",
                "256",
                "1024",
                "--operations",
                "4",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "growth exponents in N" in captured
        assert "join msgs" in captured


class TestRunScenarioCommand:
    def test_list_prints_named_presets(self, capsys):
        code = main(["run-scenario", "--list"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "uniform-churn" in captured
        assert "join-leave-attack" in captured

    def test_named_scenario_runs_and_prints_result_table(self, capsys):
        code = main(["--seed", "5", "run-scenario", "--name", "uniform-churn", "--steps", "12"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario 'uniform-churn'" in captured
        assert "events applied" in captured
        assert "stop reason" in captured
        assert "mean worst corruption" in captured

    def test_json_spec_scenario_runs(self, tmp_path, capsys):
        from repro.scenarios import Scenario

        spec = Scenario(
            name="spec-demo",
            max_size=1024,
            initial_size=90,
            tau=0.1,
            k=2.0,
            seed=4,
            steps=10,
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        code = main(["run-scenario", "--spec", str(path)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario 'spec-demo'" in captured
        assert "| events applied" in captured

    def test_missing_name_and_spec_is_an_error(self, capsys):
        code = main(["run-scenario"])
        captured = capsys.readouterr()
        assert code == 2
        assert "run-scenario needs" in captured.err
