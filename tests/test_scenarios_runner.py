"""Unit tests for the scenarios subsystem (Scenario / SimulationRunner / probes)."""

from __future__ import annotations

import random

import pytest

from repro import EngineProtocol, NowEngine, Scenario, SimulationRunner, default_parameters
from repro.baselines import CuckooRuleEngine, NoShuffleEngine, StaticClusterEngine
from repro.errors import ConfigurationError
from repro.scenarios import (
    NAMED_SCENARIOS,
    CallbackProbe,
    CorruptionTrajectoryProbe,
    CostLedgerProbe,
    SizeTrajectoryProbe,
    named_scenario,
    stop_when_size_at_least,
)
from repro.workloads import GrowthWorkload, UniformChurn

PARAMS = dict(max_size=1024, initial_size=100, tau=0.1, k=2.0, seed=7)


def small_scenario(**overrides) -> Scenario:
    fields = dict(PARAMS)
    fields.update(overrides)
    return Scenario(name=fields.pop("name", "test"), **fields)


class TestSimulationRunner:
    def test_fixed_step_run_counts_events(self):
        scenario = small_scenario(steps=25)
        result = scenario.run()
        assert result.steps == 25
        assert result.events + result.idle_steps == 25
        assert result.stop_reason == "steps exhausted"
        assert result.final_size > 0
        assert result.events_per_second > 0

    def test_keep_reports_returns_per_step_reports(self):
        scenario = small_scenario(steps=10, keep_reports=True)
        result = scenario.run()
        assert len(result.reports) == result.events
        assert all(hasattr(report, "worst_byzantine_fraction") for report in result.reports)

    def test_idle_streak_stops_finite_workloads(self):
        scenario = small_scenario(
            steps=500,
            workload={"kind": "growth", "target_size": PARAMS["initial_size"] + 10},
            max_idle_streak=3,
        )
        result = scenario.run()
        assert result.stop_reason == "source idle"
        assert result.final_size == PARAMS["initial_size"] + 10

    def test_stop_condition_ends_run_with_reason(self):
        scenario = small_scenario(
            steps=500, workload={"kind": "growth", "target_size": 400}
        )
        target = PARAMS["initial_size"] + 15
        result = scenario.run(stop_conditions=[stop_when_size_at_least(target)])
        assert result.stop_reason == f"size >= {target}"
        assert result.final_size == target
        assert result.steps < 500

    def test_run_until_size_grows_and_is_reentrant(self):
        engine = small_scenario().build_engine()
        workload = GrowthWorkload(random.Random(8), target_size=300, byzantine_join_fraction=0.1)
        runner = SimulationRunner(engine, workload, max_idle_streak=2)
        first = runner.run_until_size(PARAMS["initial_size"] + 10, max_steps=200)
        assert engine.network_size == PARAMS["initial_size"] + 10
        second = runner.run_until_size(PARAMS["initial_size"] + 10, max_steps=200)
        assert second.steps == 0  # already at the target
        third = runner.run_until_size(PARAMS["initial_size"] + 20, max_steps=200)
        assert engine.network_size == PARAMS["initial_size"] + 20
        assert runner.total_events == first.events + third.events

    def test_rejects_sources_without_next_event(self):
        engine = small_scenario().build_engine()
        with pytest.raises(ConfigurationError):
            SimulationRunner(engine, object())

    def test_rejects_duplicate_probe_names(self):
        engine = small_scenario().build_engine()
        workload = UniformChurn(random.Random(3))
        with pytest.raises(ConfigurationError, match="duplicate probe names"):
            SimulationRunner(
                engine,
                workload,
                probes=[CallbackProbe(lambda *a: None), CallbackProbe(lambda *a: None)],
            )

    def test_summary_table_renders(self):
        result = small_scenario(steps=5).run()
        table = result.summary_table()
        assert "events applied" in table
        assert "stop reason" in table


class TestProbes:
    def test_corruption_probe_tracks_every_event(self):
        probe = CorruptionTrajectoryProbe()
        result = small_scenario(steps=20).run(probes=[probe])
        assert len(probe.series) == result.events
        assert probe.peak == max(probe.series)
        assert result.probes["corruption"]["peak"] == probe.peak
        summary = probe.summary()
        assert summary.count == result.events

    def test_corruption_probe_threshold_capture(self):
        probe = CorruptionTrajectoryProbe(threshold=0.0)
        small_scenario(steps=5).run(probes=[probe])
        assert probe.captured
        assert probe.first_step_at_threshold == 1

    def test_size_probe_matches_engine(self):
        probe = SizeTrajectoryProbe()
        scenario = small_scenario(steps=15)
        result = scenario.run(probes=[probe])
        assert len(probe.sizes) == result.events
        assert probe.result()["final_size"] == result.final_size

    def test_cost_probe_groups_by_operation(self):
        probe = CostLedgerProbe()
        result = small_scenario(steps=30).run(probes=[probe])
        assert set(probe.messages_by_operation) <= {"join", "leave"}
        assert sum(probe.count(name) for name in probe.messages_by_operation) == result.events
        assert probe.total_messages() > 0
        assert probe.mean_messages_overall() > 0

    def test_cost_probe_records_zero_for_baselines(self):
        probe = CostLedgerProbe()
        small_scenario(steps=10, engine="no_shuffle").run(probes=[probe])
        assert probe.total_messages() == 0
        assert sum(probe.count(name) for name in probe.messages_by_operation) > 0

    def test_callback_probe_sampling_interval(self):
        probe = CallbackProbe(lambda engine, report, step: engine.network_size, every=5)
        result = small_scenario(steps=20).run(probes=[probe])
        assert len(probe.values) == result.events // 5

    def test_callback_probe_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CallbackProbe(lambda *a: None, every=0)


class TestScenario:
    def test_json_round_trip(self):
        scenario = named_scenario("join-leave-attack", seed=9)
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"name": "x", "bogus": 1})

    def test_unknown_engine_workload_adversary_rejected(self):
        with pytest.raises(ConfigurationError):
            small_scenario(engine="nope").build_engine()
        with pytest.raises(ConfigurationError):
            small_scenario(workload={"kind": "nope"}).run()
        with pytest.raises(ConfigurationError):
            small_scenario(adversary={"kind": "nope"}).run()

    def test_scenario_without_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            small_scenario(workload=None).run()

    def test_builds_every_engine_flavour(self):
        assert isinstance(small_scenario().build_engine(), NowEngine)
        assert isinstance(
            small_scenario(engine="no_shuffle").build_engine(), NoShuffleEngine
        )
        assert isinstance(
            small_scenario(engine="cuckoo_rule").build_engine(), CuckooRuleEngine
        )
        assert isinstance(
            small_scenario(engine="static_clusters").build_engine(), StaticClusterEngine
        )

    def test_engines_satisfy_engine_protocol(self):
        for flavour in ("now", "no_shuffle", "cuckoo_rule", "static_clusters"):
            engine = small_scenario(engine=flavour).build_engine()
            assert isinstance(engine, EngineProtocol)

    def test_adversary_target_first_resolves(self):
        scenario = small_scenario(
            steps=20,
            tau=0.2,
            adversary={"kind": "join_leave", "target_cluster": "first"},
            adversary_weight=0.5,
        )
        result = scenario.run(probes=[CorruptionTrajectoryProbe()])
        assert result.events > 0

    def test_walk_mode_string_in_engine_options(self):
        scenario = small_scenario(engine_options={"walk_mode": "simulated"}, steps=5)
        result = scenario.run()
        assert result.events == 5

    def test_named_scenarios_all_build(self):
        for name in NAMED_SCENARIOS:
            scenario = named_scenario(name, initial_size=80, max_size=512, steps=3)
            assert scenario.name == name
            assert scenario.build_engine().network_size == 80

    def test_named_scenario_unknown(self):
        with pytest.raises(ConfigurationError):
            named_scenario("does-not-exist")

    def test_seed_reproducibility(self):
        first = small_scenario(steps=15, keep_reports=True).run()
        second = small_scenario(steps=15, keep_reports=True).run()
        assert [r.network_size for r in first.reports] == [
            r.network_size for r in second.reports
        ]
        assert first.final_worst_fraction == second.final_worst_fraction


class TestEngineProtocolSurface:
    def test_baselines_share_now_observation_surface(self):
        now = small_scenario().build_engine()
        baseline = small_scenario(engine="no_shuffle").build_engine()
        for engine in (now, baseline):
            assert engine.network_size > 0
            assert engine.cluster_count > 0
            assert set(engine.cluster_sizes()) == set(engine.byzantine_fractions())
            assert 0.0 <= engine.worst_cluster_fraction() <= 1.0
            assert isinstance(engine.compromised_clusters(), list)
            assert engine.random_member() in engine.active_nodes()
            assert engine.random_cluster() in engine.state.clusters
            assert engine.metrics is engine.state.metrics
