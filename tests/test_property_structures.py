"""Property-based tests (hypothesis) for the core data structures.

These exercise the cluster registry, the overlay graph and the knowledge
graph with arbitrary operation sequences and assert the structural invariants
the protocol code relies on (index consistency, symmetry of edges, partition
validity), independently of any particular protocol run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cluster import ClusterRegistry
from repro.network.topology import KnowledgeGraph
from repro.overlay.graph import OverlayGraph


# ----------------------------------------------------------------------
# ClusterRegistry: arbitrary move/swap sequences keep the partition valid.
# ----------------------------------------------------------------------
@st.composite
def registry_and_operations(draw):
    cluster_count = draw(st.integers(min_value=2, max_value=5))
    members_per_cluster = draw(st.integers(min_value=1, max_value=6))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["move", "swap"]),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=30,
        )
    )
    return cluster_count, members_per_cluster, operations


@given(registry_and_operations())
@settings(max_examples=60, deadline=None)
def test_cluster_registry_partition_invariant(data):
    cluster_count, members_per_cluster, operations = data
    registry = ClusterRegistry()
    node_id = 0
    cluster_ids = []
    for _ in range(cluster_count):
        members = list(range(node_id, node_id + members_per_cluster))
        node_id += members_per_cluster
        cluster_ids.append(registry.create_cluster(members).cluster_id)
    all_nodes = set(range(node_id))

    for kind, raw_node, raw_target in operations:
        node = raw_node % node_id
        target = cluster_ids[raw_target % len(cluster_ids)]
        source = registry.cluster_of(node)
        if kind == "move":
            registry.move_member(node, target)
        else:
            target_members = registry.get(target).member_list()
            if not target_members or source == target:
                continue
            partner = target_members[raw_target % len(target_members)]
            registry.swap_members(source, node, target, partner)

    # Partition invariant: every node in exactly one cluster, indexes consistent.
    seen = set()
    for cluster in registry.clusters():
        for member in cluster.members:
            assert member not in seen
            assert registry.cluster_of(member) == cluster.cluster_id
            seen.add(member)
    assert seen == all_nodes
    assert registry.total_nodes() == len(all_nodes)


# ----------------------------------------------------------------------
# OverlayGraph: edges stay symmetric, degrees match, removals clean up.
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add_edge", "remove_edge", "remove_vertex"]),
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_overlay_graph_symmetry_invariant(operations):
    graph = OverlayGraph()
    for vertex in range(12):
        graph.add_vertex(vertex, weight=1.0)
    for kind, first, second in operations:
        if first not in graph or (kind != "remove_vertex" and second not in graph):
            continue
        if kind == "add_edge":
            graph.add_edge(first, second)
        elif kind == "remove_edge":
            graph.remove_edge(first, second)
        else:
            if len(graph) > 1:
                graph.remove_vertex(first)

    vertices = set(graph.vertices())
    edge_endpoint_count = 0
    for vertex in vertices:
        for neighbour in graph.neighbours(vertex):
            assert neighbour in vertices  # no dangling endpoints
            assert graph.has_edge(neighbour, vertex)  # symmetry
            edge_endpoint_count += 1
    assert edge_endpoint_count == 2 * graph.edge_count()
    if vertices:
        assert graph.max_degree() == max(graph.degree(v) for v in vertices)


# ----------------------------------------------------------------------
# KnowledgeGraph: connect/disconnect keeps symmetry; clique helper is complete.
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_knowledge_graph_symmetry(operations):
    graph = KnowledgeGraph()
    for connect, first, second in operations:
        if connect:
            graph.connect(first, second)
        else:
            graph.disconnect(first, second)
    for node in graph.nodes():
        for neighbour in graph.neighbours(node):
            assert graph.knows(neighbour, node)


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_knowledge_graph_clique_is_complete(size):
    graph = KnowledgeGraph()
    graph.connect_clique(range(size))
    assert graph.edge_count() == size * (size - 1) // 2
    for node in range(size):
        assert graph.degree(node) == size - 1
