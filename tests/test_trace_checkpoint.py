"""Tests for the checkpoint half of ``repro.trace``.

The load-bearing property is *resume equals uninterrupted*: a run
checkpointed at step S and resumed to step T must land in a state
bit-identical (same state hash, which includes the RNG stream digest and
every RNG-visible array order) to the same scenario run straight through to
T.  That property is checked directly for every engine flavour the
scenarios support and property-tested under random churn mixes with
hypothesis.
"""

from __future__ import annotations

import json
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scenario
from repro.core.cluster import Cluster, ClusterRegistry
from repro.core.engine import NowEngine
from repro.core.state import NodeRegistry
from repro.errors import ConfigurationError
from repro.network.metrics import MetricsRegistry
from repro.overlay.graph import OverlayGraph
from repro.scenarios.runner import SimulationRunner
from repro.trace import (
    Checkpoint,
    record_scenario,
    resume_from_checkpoint,
    state_fingerprint,
    state_hash,
    write_json_atomic,
)

PARAMS = dict(max_size=1024, initial_size=100, tau=0.1, k=2.0, seed=7)


def small_scenario(**overrides) -> Scenario:
    fields = dict(PARAMS)
    fields.update(overrides)
    return Scenario(name=fields.pop("name", "ckpt-test"), **fields)


def run_split(scenario: Scenario, first: int, second: int, tmp_path) -> str:
    """Run ``first`` steps, checkpoint, resume ``second`` steps; final hash."""
    path = os.path.join(str(tmp_path), "split.ckpt.json")
    record_scenario(scenario, steps=first, checkpoint_path=path, checkpoint_every=10**9)
    resumed = resume_from_checkpoint(path, steps=second)
    return resumed.final_state_hash


def run_straight(scenario: Scenario, steps: int) -> str:
    """Run ``steps`` steps uninterrupted; final hash."""
    engine = scenario.build_engine()
    runner = scenario.build_runner(engine=engine)
    runner.run(steps)
    return state_hash(engine)


class TestComponentSnapshots:
    def test_engine_snapshot_is_json_serialisable(self):
        scenario = small_scenario(steps=10)
        engine = scenario.build_engine()
        snapshot = engine.capture_snapshot()
        rebuilt = json.loads(json.dumps(snapshot))
        restored = NowEngine.restore(rebuilt)
        assert state_hash(restored) == state_hash(engine)

    def test_restored_engine_hash_and_fingerprint_match(self):
        scenario = small_scenario(steps=30)
        engine = scenario.build_engine()
        runner = scenario.build_runner(engine=engine)
        runner.run(30)
        restored = NowEngine.restore(engine.capture_snapshot())
        assert state_fingerprint(restored) == state_fingerprint(engine)

    def test_node_registry_round_trip_preserves_sampling_order(self):
        scenario = small_scenario(steps=20)
        engine = scenario.build_engine()
        scenario.build_runner(engine=engine).run(20)
        registry = engine.state.nodes
        restored = NodeRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot_state()))
        )
        # Identical arrays => identical uniform draws for the same RNG state.
        assert restored.snapshot_state() == registry.snapshot_state()
        rng_a, rng_b = random.Random(3), random.Random(3)
        for _ in range(50):
            assert restored.sample_active(rng_a) == registry.sample_active(rng_b)
        assert restored.active_count() == registry.active_count()
        assert restored.byzantine_fraction() == registry.byzantine_fraction()

    def test_cluster_registry_round_trip(self):
        registry = ClusterRegistry()
        first = registry.create_cluster([1, 2, 3], created_at=4)
        registry.create_cluster([4, 5], created_at=5)
        first.exchanges_performed = 7
        restored = ClusterRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot_state()))
        )
        assert restored.snapshot_state() == registry.snapshot_state()
        assert restored.cluster_of(5) == registry.cluster_of(5)
        assert restored.get(first.cluster_id).exchanges_performed == 7

    def test_cluster_snapshot_round_trip(self):
        cluster = Cluster(cluster_id=9, members={5, 1, 3}, created_at=2)
        cluster.last_full_exchange = 11
        restored = Cluster.from_snapshot(json.loads(json.dumps(cluster.snapshot_state())))
        assert restored.members == cluster.members
        assert restored.member_list() == [1, 3, 5]
        assert restored.last_full_exchange == 11

    def test_overlay_graph_round_trip_preserves_version_and_tables(self):
        graph = OverlayGraph()
        for vertex in (4, 1, 9):
            graph.add_vertex(vertex, weight=float(vertex))
        graph.add_edge(4, 1)
        graph.add_edge(9, 1)
        graph.remove_vertex(4)
        restored = OverlayGraph.from_snapshot(json.loads(json.dumps(graph.snapshot_state())))
        assert restored.version == graph.version
        assert restored.snapshot_state() == graph.snapshot_state()
        assert restored.neighbour_table(1) == graph.neighbour_table(1)
        rng_a, rng_b = random.Random(5), random.Random(5)
        for _ in range(20):
            assert restored.sample_weighted_vertex(rng_a) == graph.sample_weighted_vertex(rng_b)

    def test_metrics_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.scope("join").charge(10, 2, label="x")
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot()))
        )
        assert restored.snapshot() == registry.snapshot()


class TestCheckpointFile:
    def test_capture_save_load_restore(self, tmp_path):
        scenario = small_scenario(steps=15)
        engine = scenario.build_engine()
        runner = scenario.build_runner(engine=engine)
        runner.run(15)
        checkpoint = Checkpoint.capture(
            engine, source=runner.source, scenario=scenario, steps_done=15, events_done=runner.total_events
        )
        path = os.path.join(str(tmp_path), "c.json")
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.steps_done == 15
        assert loaded.captured_hash == state_hash(engine)
        assert state_hash(loaded.restore_engine()) == state_hash(engine)

    def test_restore_detects_tampered_state(self, tmp_path):
        scenario = small_scenario(steps=5)
        engine = scenario.build_engine()
        checkpoint = Checkpoint.capture(engine, scenario=scenario)
        data = json.loads(json.dumps(checkpoint.data))
        data["engine"]["state"]["time_step"] += 1
        with pytest.raises(ConfigurationError):
            Checkpoint(data).restore_engine()

    def test_restore_detects_tampered_honest_order(self, tmp_path):
        # honest_list order is RNG-visible (honest_only draws index into
        # it); the integrity hash must cover it.
        scenario = small_scenario(steps=5)
        engine = scenario.build_engine()
        checkpoint = Checkpoint.capture(engine, scenario=scenario)
        data = json.loads(json.dumps(checkpoint.data))
        honest = data["engine"]["state"]["nodes"]["honest_list"]
        honest[0], honest[1] = honest[1], honest[0]
        with pytest.raises(ConfigurationError):
            Checkpoint(data).restore_engine()

    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = os.path.join(str(tmp_path), "doc.json")
        write_json_atomic(path, {"a": 1})
        write_json_atomic(path, {"a": 2})
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == {"a": 2}
        assert [entry for entry in os.listdir(str(tmp_path)) if entry.startswith(".tmp-")] == []

    def test_capture_rejects_engine_without_snapshot_support(self):
        class Opaque:
            pass

        with pytest.raises(ConfigurationError):
            Checkpoint.capture(Opaque())

    def test_resume_requires_scenario(self, tmp_path):
        scenario = small_scenario(steps=5)
        engine = scenario.build_engine()
        checkpoint = Checkpoint.capture(engine)  # no scenario attached
        path = os.path.join(str(tmp_path), "c.json")
        checkpoint.save(path)
        with pytest.raises(ConfigurationError):
            resume_from_checkpoint(path, steps=1)


class TestResumeEqualsUninterrupted:
    def test_uniform_churn(self, tmp_path):
        total, cut = 80, 35
        straight = run_straight(small_scenario(steps=total), total)
        split = run_split(small_scenario(steps=total), cut, total - cut, tmp_path)
        assert split == straight

    def test_adversary_mix(self, tmp_path):
        fields = dict(
            steps=80,
            tau=0.2,
            adversary={"kind": "join_leave", "target_cluster": "first"},
            adversary_weight=0.5,
        )
        straight = run_straight(small_scenario(**fields), 80)
        split = run_split(small_scenario(**fields), 30, 50, tmp_path)
        assert split == straight

    def test_simulated_walk_mode(self, tmp_path):
        fields = dict(steps=60, engine_options={"walk_mode": "simulated"})
        straight = run_straight(small_scenario(**fields), 60)
        split = run_split(small_scenario(**fields), 25, 35, tmp_path)
        assert split == straight

    def test_oscillating_workload_state_survives(self, tmp_path):
        fields = dict(
            steps=90,
            workload={"kind": "oscillating", "low_size": 90, "high_size": 130},
        )
        straight = run_straight(small_scenario(**fields), 90)
        split = run_split(small_scenario(**fields), 45, 45, tmp_path)
        assert split == straight

    def test_default_resume_completes_original_budget(self, tmp_path):
        scenario = small_scenario(steps=50)
        straight = run_straight(small_scenario(steps=50), 50)
        path = os.path.join(str(tmp_path), "c.json")
        record_scenario(scenario, steps=20, checkpoint_path=path, checkpoint_every=10**9)
        resumed = resume_from_checkpoint(path)  # no steps: finish the budget
        assert resumed.result.steps == 30
        assert resumed.final_state_hash == straight

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cut=st.integers(min_value=1, max_value=59),
        adversarial=st.booleans(),
    )
    def test_property_random_churn(self, seed, cut, adversarial, tmp_path_factory):
        total = 60
        fields = dict(steps=total, seed=seed)
        if adversarial:
            fields.update(
                tau=0.2,
                adversary={"kind": "oblivious"},
                adversary_weight=0.4,
            )
        straight = run_straight(small_scenario(**fields), total)
        tmp_path = tmp_path_factory.mktemp("resume-prop")
        split = run_split(small_scenario(**fields), cut, total - cut, tmp_path)
        assert split == straight


class TestResumeBookkeeping:
    def test_counters_continue_across_resume(self, tmp_path):
        scenario = small_scenario(steps=40)
        path = os.path.join(str(tmp_path), "c.json")
        record_scenario(scenario, steps=25, checkpoint_path=path, checkpoint_every=10)
        checkpoint = Checkpoint.load(path)
        assert checkpoint.steps_done == 25
        resumed = resume_from_checkpoint(path, steps=15, checkpoint_every=10)
        assert resumed.result.steps == 15
        final = Checkpoint.load(path)
        assert final.steps_done == 40

    def test_runner_source_attribute_is_the_event_source(self):
        scenario = small_scenario(steps=5)
        engine = scenario.build_engine()
        source = scenario.build_source(engine)
        runner = SimulationRunner(engine, source, name="t")
        assert runner.source is source
