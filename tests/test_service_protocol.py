"""Service wire protocol, bounded queue and live-session semantics."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    LiveEngineSession,
    ProtocolError,
    RequestQueue,
    SERVICE_RNG_OFFSET,
    encode_frame,
    error_response,
    live_scenario,
    ok_response,
    parse_request,
)
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_FAILED,
    ERROR_UNKNOWN_OP,
    OPERATIONS,
)


class TestParseRequest:
    def test_minimal_valid_requests(self):
        for op in sorted(OPERATIONS):
            frame = parse_request(json.dumps({"op": op, "id": 1}))
            assert frame["op"] == op

    def test_join_with_all_fields(self):
        frame = parse_request(
            '{"op": "join", "id": "x", "role": "byzantine", '
            '"node_id": 7, "contact_cluster": 2}'
        )
        assert frame["role"] == "byzantine"
        assert frame["node_id"] == 7

    @pytest.mark.parametrize(
        "line,code",
        [
            ("not json at all", ERROR_BAD_REQUEST),
            ('["op", "sample"]', ERROR_BAD_REQUEST),
            ('{"id": 1}', ERROR_BAD_REQUEST),
            ('{"op": 7, "id": 1}', ERROR_BAD_REQUEST),
            ('{"op": "teleport", "id": 1}', ERROR_UNKNOWN_OP),
            ('{"op": "sample", "id": [1]}', ERROR_BAD_REQUEST),
            ('{"op": "sample", "id": 1, "extra": true}', ERROR_BAD_REQUEST),
            ('{"op": "join", "id": 1, "role": "sneaky"}', ERROR_BAD_REQUEST),
            ('{"op": "join", "id": 1, "node_id": "n7"}', ERROR_BAD_REQUEST),
            ('{"op": "join", "id": 1, "node_id": true}', ERROR_BAD_REQUEST),
            ('{"op": "join", "id": 1, "contact_cluster": 1.5}', ERROR_BAD_REQUEST),
            ('{"op": "leave", "id": 1, "node_id": "n7"}', ERROR_BAD_REQUEST),
            ('{"op": "sample", "id": 1, "payload": "x"}', ERROR_BAD_REQUEST),
        ],
    )
    def test_invalid_requests_rejected(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code

    def test_error_carries_salvaged_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "teleport", "id": 42}')
        assert excinfo.value.request_id == 42
        assert excinfo.value.op == "teleport"


class TestResponses:
    def test_ok_response_shape(self):
        frame = ok_response(3, "sample", {"node_id": 1}, latency_ms=2.5)
        assert frame == {
            "id": 3,
            "ok": True,
            "op": "sample",
            "result": {"node_id": 1},
            "latency_ms": 2.5,
        }

    def test_error_response_shape(self):
        frame = error_response(3, "sample", ERROR_FAILED, "nope")
        assert frame["ok"] is False
        assert frame["error"] == ERROR_FAILED

    def test_encode_frame_is_one_json_line(self):
        raw = encode_frame(ok_response(1, "ping", {"pong": True}))
        assert raw.endswith(b"\n")
        assert json.loads(raw) == ok_response(1, "ping", {"pong": True})
        assert raw.count(b"\n") == 1


class TestRequestQueue:
    def test_fifo_offer_and_drain(self):
        queue = RequestQueue(maxsize=4)
        for item in "abc":
            assert queue.offer(item)
        assert queue.drain(2) == ["a", "b"]
        assert queue.drain(10) == ["c"]
        assert queue.accepted == 3
        assert queue.rejected == 0

    def test_fast_fail_when_full(self):
        queue = RequestQueue(maxsize=2)
        assert queue.offer(1) and queue.offer(2)
        assert not queue.offer(3)
        assert queue.rejected == 1
        assert len(queue) == 2
        queue.drain(1)
        assert queue.offer(3)

    def test_closed_queue_rejects_but_still_drains(self):
        queue = RequestQueue(maxsize=4)
        queue.offer("x")
        queue.close()
        assert queue.closed
        assert not queue.offer("y")
        assert queue.drain(10) == ["x"]

    def test_wait_wakes_on_offer_and_on_close(self):
        async def scenario():
            queue = RequestQueue(maxsize=4)
            waiter = asyncio.ensure_future(queue.wait())
            await asyncio.sleep(0)
            assert not waiter.done()
            queue.offer("x")
            await asyncio.wait_for(waiter, timeout=1)
            queue.drain(10)
            waiter = asyncio.ensure_future(queue.wait())
            await asyncio.sleep(0)
            assert not waiter.done()
            queue.close()
            await asyncio.wait_for(waiter, timeout=1)

        asyncio.run(scenario())

    def test_bound_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RequestQueue(maxsize=0)


@pytest.fixture()
def session():
    live = LiveEngineSession(live_scenario(seed=11, initial_size=80, max_size=256))
    yield live
    live.close()


class TestLiveEngineSession:
    def test_requires_now_engine_without_shards(self):
        with pytest.raises(ConfigurationError):
            LiveEngineSession(live_scenario(engine="no_shuffle"))
        with pytest.raises(ConfigurationError):
            LiveEngineSession(live_scenario(shards=2))

    def test_service_rng_offsets_scenario_seed(self, session):
        import random

        probe = random.Random(11 + SERVICE_RNG_OFFSET)
        assert session.rng.random() == probe.random()

    def test_join_and_leave_advance_engine_time(self, session):
        before = session.engine.state.time_step
        joined = session.execute({"op": "join", "id": 1})
        left = session.execute({"op": "leave", "id": 2, "node_id": joined["node_id"]})
        assert session.engine.state.time_step == before + 2
        assert session.events_applied == 2
        assert left["network_size"] == joined["network_size"] - 1

    def test_join_existing_active_node_fails_preflight(self, session):
        joined = session.execute({"op": "join", "id": 1})
        time_before = session.engine.state.time_step
        with pytest.raises(ProtocolError) as excinfo:
            session.execute({"op": "join", "id": 2, "node_id": joined["node_id"]})
        assert excinfo.value.code == ERROR_FAILED
        # Pre-flight rejection must not consume a protocol time step —
        # that is the replay-divergence hazard the checks exist to prevent.
        assert session.engine.state.time_step == time_before
        assert session.events_applied == 1

    def test_leave_unknown_node_fails_preflight(self, session):
        time_before = session.engine.state.time_step
        with pytest.raises(ProtocolError) as excinfo:
            session.execute({"op": "leave", "id": 1, "node_id": 10**9})
        assert excinfo.value.code == ERROR_FAILED
        assert session.engine.state.time_step == time_before

    def test_join_at_max_size_fails_preflight(self):
        live = LiveEngineSession(
            live_scenario(seed=3, initial_size=40, max_size=40)
        )
        try:
            with pytest.raises(ProtocolError) as excinfo:
                live.execute({"op": "join", "id": 1})
            assert excinfo.value.code == ERROR_FAILED
            assert live.events_applied == 0
        finally:
            live.close()

    def test_anonymous_leave_matches_named_leave_of_same_node(self):
        # The anonymous-leave pick draws from the service stream, so a
        # sibling session that names the same node explicitly must land on
        # the identical engine state — the recorded trace only ever sees
        # the concrete node id.
        from repro.trace.hashing import state_hash

        anonymous = LiveEngineSession(live_scenario(seed=5, initial_size=90))
        named = LiveEngineSession(live_scenario(seed=5, initial_size=90))
        try:
            picked = anonymous.execute({"op": "leave", "id": 1})["node_id"]
            named.execute({"op": "leave", "id": 1, "node_id": picked})
            assert state_hash(anonymous.engine) == state_hash(named.engine)
        finally:
            anonymous.close()
            named.close()

    def test_reads_do_not_touch_engine_rng_or_time(self, session):
        from repro.trace.hashing import rng_digest

        time_before = session.engine.state.time_step
        digest_before = rng_digest(session.engine.state.rng)
        session.execute({"op": "sample", "id": 1})
        session.execute({"op": "broadcast", "id": 2, "payload": "hi"})
        session.execute({"op": "status", "id": 3})
        session.execute({"op": "ping", "id": 4})
        assert session.engine.state.time_step == time_before
        assert rng_digest(session.engine.state.rng) == digest_before
        assert session.events_applied == 0

    def test_status_reports_counters(self, session):
        session.execute({"op": "sample", "id": 1})
        session.execute({"op": "join", "id": 2})
        status = session.execute({"op": "status", "id": 3})
        assert status["events_applied"] == 1
        assert status["operations"] == {"sample": 1, "join": 1}
        assert status["network_size"] == session.engine.network_size
        assert status["recording"] is None

    def test_closed_session_refuses_requests(self, session):
        session.close()
        with pytest.raises(ConfigurationError):
            session.execute({"op": "ping", "id": 1})

    def test_attach_trace_after_events_is_rejected(self, session, tmp_path):
        session.execute({"op": "join", "id": 1})
        with pytest.raises(ConfigurationError):
            session.attach_trace(str(tmp_path / "late.jsonl"))
