"""Handoff edge cases of the sharded barrier protocol (``repro.shard``).

Scripted event sources drive the coordinator into the awkward corners of
cross-shard ownership transfer: one identity churning across shards several
times inside a single barrier window, and a shard drained towards losing its
last cluster (the ``min_shard_size`` floor pull must replenish it).  Every
case is checked for worker-count bit-identity as well — the edge cases are
exactly where a transport-order bug would surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro import Scenario
from repro.core.events import ChurnEvent
from repro.errors import ConfigurationError
from repro.network.node import NodeRole
from repro.shard import ShardCoordinator
from repro.shard.worker import InlineTransport


class _ScriptedSource:
    """Replays a fixed list of events (``None`` idles), then idles forever."""

    def __init__(self, events: List[Optional[ChurnEvent]]) -> None:
        self._events = list(events)
        self._cursor = 0

    def next_event(self, engine) -> Optional[ChurnEvent]:
        if self._cursor >= len(self._events):
            return None
        event = self._events[self._cursor]
        self._cursor += 1
        return event


@dataclass
class _ScriptedScenario(Scenario):
    """A scenario whose event stream is a fixed script (handoff tests only)."""

    script: List[Optional[ChurnEvent]] = field(default_factory=list, repr=False)

    def build_source(self, engine):
        return _ScriptedSource(self.script)

    def to_dict(self):
        data = super().to_dict()
        data.pop("script", None)  # workers rebuild a plain Scenario
        return data


def _scenario(script, **overrides):
    fields = dict(
        name="handoff",
        max_size=256,
        initial_size=200,
        tau=0.1,
        seed=5,
        steps=len(script),
        shards=2,
        max_idle_streak=3,
    )
    fields.update(overrides)
    return _ScriptedScenario(script=script, **fields)


def _run(scenario, workers):
    coordinator = ShardCoordinator(scenario, workers=workers)
    try:
        result = coordinator.run(scenario.steps)
        return result, coordinator.state_hash(), list(coordinator.directory.sizes)
    finally:
        coordinator.close()


def test_identity_churning_twice_within_one_window():
    # Node 0 (shard 0's block) leaves, rejoins, leaves and rejoins again —
    # all inside one 64-event barrier window.  Each rejoin is a fresh
    # placement of a known identity; the shard engines must track the
    # global id through every local reincarnation.
    script = [
        ChurnEvent.leave(0),
        ChurnEvent.join(role=NodeRole.BYZANTINE, node_id=0),
        ChurnEvent.leave(0),
        ChurnEvent.join(role=NodeRole.HONEST, node_id=0),
    ]
    scenario = _scenario(script)
    result, state_hash, sizes = _run(scenario, workers=1)
    assert result.events == 4
    assert result.final_size == 200
    result2, state_hash2, sizes2 = _run(scenario, workers=2)
    assert (result2.final_size, sizes2, state_hash2) == (
        result.final_size,
        sizes,
        state_hash,
    )


def test_rejoin_lands_on_least_loaded_shard():
    # Leaving two shard-0 nodes makes shard 0 the least-loaded shard, so the
    # rejoin goes back there; the directory must reactivate, not reallocate.
    script = [
        ChurnEvent.leave(0),
        ChurnEvent.leave(1),
        ChurnEvent.join(role=NodeRole.HONEST, node_id=0),
    ]
    scenario = _scenario(script)
    coordinator = ShardCoordinator(scenario, workers=1)
    try:
        coordinator.run(scenario.steps)
        assert coordinator.directory.owner[0] == 0
        assert coordinator.directory.sizes == [99, 100]
    finally:
        coordinator.close()


def test_draining_shard_is_pulled_back_above_floor():
    # Drain shard 0's initial block (gids 0..99) far below the floor with a
    # small barrier interval: every barrier must plan a floor pull before
    # the shard loses its last cluster, and the run must stay worker-count
    # identical through the repeated handoffs.
    script = [ChurnEvent.leave(gid) for gid in range(70)]
    scenario = _scenario(
        script, shard_options={"barrier_interval": 10, "min_shard_size": 48}
    )
    result, state_hash, sizes = _run(scenario, workers=1)
    assert result.final_size == 130
    assert min(sizes) >= 48  # the floor held at every barrier
    _, state_hash2, sizes2 = _run(scenario, workers=2)
    assert (sizes2, state_hash2) == (sizes, state_hash)


def test_handoff_messages_are_sequenced_and_pick_largest_gids():
    # Force one deterministic handoff and inspect the messages themselves.
    script = [ChurnEvent.leave(gid) for gid in range(30)]
    scenario = _scenario(
        script,
        steps=len(script),
        shard_options={"barrier_interval": len(script), "min_shard_size": 90},
    )
    coordinator = ShardCoordinator(scenario, workers=1)
    try:
        coordinator.run(scenario.steps)
        messages = coordinator.last_handoffs
        assert messages, "the drained shard should have forced a floor pull"
        assert all(m.src == 1 and m.dst == 0 for m in messages)
        assert [m.seq for m in messages] == list(range(len(messages)))
        # Emigrants are the donor's largest global ids, in descending order.
        gids = [m.node_id for m in messages]
        assert gids == sorted(gids, reverse=True)
        assert gids[0] == 199
    finally:
        coordinator.close()


def test_emigrate_ids_applies_leaves_and_piggybacks_summary():
    scenario = Scenario(
        name="emigrate",
        max_size=256,
        initial_size=120,
        tau=0.1,
        seed=9,
        shards=1,
    )
    transport = InlineTransport(scenario.to_dict(), [0], [120])
    try:
        reply = transport.call("emigrate_ids", 0, [119, 118, 117, 116, 115])
        assert reply["summary"]["size"] == 115
        assert transport.call("summaries")[0]["size"] == 115
    finally:
        transport.close()


def test_directory_emigrants_match_worker_selection():
    # The coordinator plans emigrants from the directory; the selection must
    # be the donor's largest active gids in descending order with the roles
    # the worker would have reported.
    scenario = _scenario([], steps=0)
    coordinator = ShardCoordinator(scenario, workers=1)
    try:
        moves = coordinator.directory.emigrants(1, 5)
        assert [gid for gid, _role in moves] == [199, 198, 197, 196, 195]
        registry = coordinator.directory.nodes
        for gid, role in moves:
            expected = "byzantine" if registry.is_byzantine(gid) else "honest"
            assert role == expected
        with pytest.raises(ConfigurationError):
            coordinator.directory.emigrants(0, 101)
    finally:
        coordinator.close()
