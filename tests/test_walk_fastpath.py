"""Property tests for the walk fast path (cached transition tables).

Two families of guarantees:

* **Structural exactness** (hypothesis): under arbitrary churn sequences —
  vertex add/remove, edge add/remove, weight updates — the overlay's cached
  neighbour tables and cumulative-weight table stay byte-for-byte consistent
  with a naively recomputed view, and the cached weighted draw selects the
  *same* vertex as the naive rebuild-per-draw implementation for the same
  RNG stream.

* **Distributional equivalence** (chi-square): fast-path sampling — the
  cached-table oracle draw and the buffered/batched CTRW — is statistically
  indistinguishable from the naive implementations and from the analytic
  target distributions, including after overlay mutations.

The chi-square critical values use the Wilson–Hilferty approximation at a
conservative significance (p ≈ 0.001) so the randomised tests stay stable
under fixed seeds.
"""

from __future__ import annotations

import bisect
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.graph import OverlayGraph
from repro.walks.biased import BiasedClusterWalk
from repro.walks.ctrw import ContinuousRandomWalk
from repro.walks.interface import MappingGraph
from repro.walks.sampler import ClusterSampler, WalkMode


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def chi_square_critical(df: int, z: float = 3.09) -> float:
    """Wilson–Hilferty upper-tail critical value (z=3.09 ~ p=0.001)."""
    if df <= 0:
        return 0.0
    term = 2.0 / (9.0 * df)
    return df * (1.0 - term + z * math.sqrt(term)) ** 3


def chi_square_statistic(counts, expected) -> float:
    """Goodness-of-fit statistic over aligned count/expectation sequences."""
    statistic = 0.0
    for observed, expect in zip(counts, expected):
        if expect > 0:
            statistic += (observed - expect) ** 2 / expect
    return statistic


def naive_weighted_draw(graph: OverlayGraph, rng: random.Random):
    """The pre-cache oracle draw: rebuild the table, one rng.random() pick."""
    vertices = list(graph.vertices())
    cumulative = []
    total = 0.0
    for vertex in vertices:
        total += max(0.0, graph.weight(vertex))
        cumulative.append(total)
    index = bisect.bisect_right(cumulative, rng.random() * total, 0, len(cumulative) - 1)
    return vertices[index]


def apply_operations(graph: OverlayGraph, operations, rng: random.Random) -> None:
    """Apply a generated churn sequence, skipping structurally invalid ops."""
    next_vertex = max((v for v in graph.vertices()), default=0) + 1
    for kind, a, b in operations:
        vertices = list(graph.vertices())
        if kind == "add_vertex":
            graph.add_vertex(next_vertex, weight=1.0 + (a % 7))
            next_vertex += 1
        elif kind == "remove_vertex" and len(vertices) > 2:
            graph.remove_vertex(vertices[a % len(vertices)])
        elif kind == "add_edge" and len(vertices) >= 2:
            graph.add_edge(vertices[a % len(vertices)], vertices[b % len(vertices)])
        elif kind == "remove_edge" and len(vertices) >= 2:
            graph.remove_edge(vertices[a % len(vertices)], vertices[b % len(vertices)])
        elif kind == "set_weight" and vertices:
            graph.set_weight(vertices[a % len(vertices)], 0.5 + (b % 9))


def seeded_overlay(vertices: int = 6, seed: int = 5) -> OverlayGraph:
    rng = random.Random(seed)
    graph = OverlayGraph()
    for vertex in range(vertices):
        graph.add_vertex(vertex, weight=1.0 + rng.randrange(5))
    for vertex in range(vertices):
        graph.add_edge(vertex, (vertex + 1) % vertices)
        if rng.random() < 0.5:
            graph.add_edge(vertex, rng.randrange(vertices))
    return graph


OPERATION = st.tuples(
    st.sampled_from(["add_vertex", "remove_vertex", "add_edge", "remove_edge", "set_weight"]),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
)


# ----------------------------------------------------------------------
# Structural exactness under churn (hypothesis)
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    @settings(max_examples=60, deadline=None)
    @given(operations=st.lists(OPERATION, max_size=25), seed=st.integers(0, 2**16))
    def test_tables_match_naive_view_under_churn(self, operations, seed):
        """Cached tables agree exactly with fresh recomputation after any churn."""
        graph = seeded_overlay(seed=seed % 13)
        apply_operations(graph, operations, random.Random(seed))
        for vertex in graph.vertices():
            assert graph.has_vertex(vertex)
            assert graph.neighbour_table(vertex) == tuple(graph.neighbours(vertex))
            assert graph.degree(vertex) == len(graph.neighbours(vertex))
        assert not graph.has_vertex(-1)
        # A second read must serve the (now cached) identical answer.
        for vertex in graph.vertices():
            assert graph.neighbour_table(vertex) == tuple(graph.neighbours(vertex))

    @settings(max_examples=60, deadline=None)
    @given(operations=st.lists(OPERATION, max_size=25), seed=st.integers(0, 2**16))
    def test_cached_draw_equals_naive_draw_under_churn(self, operations, seed):
        """Same RNG stream => cached and naive weighted draws pick the same vertex."""
        graph = seeded_overlay(seed=seed % 13)
        rng = random.Random(seed)
        for index in range(len(operations) + 1):
            state = rng.getstate()
            fast = graph.sample_weighted_vertex(rng)
            rng.setstate(state)
            assert fast == naive_weighted_draw(graph, rng)
            if index < len(operations):
                apply_operations(graph, [operations[index]], rng)

    def test_interleaved_sampling_and_mutation(self):
        """A long alternating sample/mutate stream never serves a stale table."""
        graph = seeded_overlay(vertices=8, seed=3)
        rng = random.Random(17)
        shadow = random.Random(17)
        for step in range(300):
            assert graph.sample_weighted_vertex(rng) == naive_weighted_draw(graph, shadow)
            vertices = list(graph.vertices())
            choice = step % 4
            if choice == 0:
                graph.set_weight(vertices[step % len(vertices)], 1.0 + step % 11)
            elif choice == 1:
                graph.add_edge(vertices[step % len(vertices)], vertices[(step * 7) % len(vertices)])
            elif choice == 2:
                graph.remove_edge(vertices[step % len(vertices)], vertices[(step * 5) % len(vertices)])
            elif len(vertices) < 12:
                graph.add_vertex(100 + step, weight=2.0)
                graph.add_edge(100 + step, vertices[0])


# ----------------------------------------------------------------------
# Distributional equivalence (chi-square)
# ----------------------------------------------------------------------
class TestDistributionEquivalence:
    def test_oracle_draws_match_target_distribution(self):
        """Cached-table oracle sampling is chi-square-consistent with |C|/n."""
        graph = seeded_overlay(vertices=7, seed=11)
        rng = random.Random(23)
        sampler = ClusterSampler(graph, rng, segment_duration=4.0, mode=WalkMode.ORACLE)
        samples = 6000
        counts = {vertex: 0 for vertex in graph.vertices()}
        for _ in range(samples):
            counts[sampler.sample(0).cluster] += 1
        target = graph.target_distribution()
        statistic = chi_square_statistic(
            [counts[v] for v in sorted(counts)],
            [samples * target[v] for v in sorted(counts)],
        )
        assert statistic < chi_square_critical(len(counts) - 1)

    def test_oracle_draws_match_target_after_mutations(self):
        """The same chi-square holds after weight/edge churn invalidates tables."""
        graph = seeded_overlay(vertices=7, seed=11)
        rng = random.Random(29)
        sampler = ClusterSampler(graph, rng, segment_duration=4.0, mode=WalkMode.ORACLE)
        for _ in range(500):  # warm the caches, then churn
            sampler.sample(0)
        graph.set_weight(2, 9.0)
        graph.add_vertex(50, weight=4.0)
        graph.add_edge(50, 0)
        graph.remove_edge(0, 1)
        samples = 6000
        counts = {vertex: 0 for vertex in graph.vertices()}
        for _ in range(samples):
            counts[sampler.sample(0).cluster] += 1
        target = graph.target_distribution()
        statistic = chi_square_statistic(
            [counts[v] for v in sorted(counts)],
            [samples * target[v] for v in sorted(counts)],
        )
        assert statistic < chi_square_critical(len(counts) - 1)

    def test_batched_walks_match_plain_walks(self):
        """run_many endpoints are chi-square-indistinguishable from run() endpoints.

        Two-sample chi-square over the endpoint histograms of the batched
        (bulk-exponential) and the plain per-hop walk on the same graph.
        """
        adjacency = {i: [(i - 1) % 6, (i + 1) % 6] for i in range(6)}
        adjacency[0].append(3)
        adjacency[3].append(0)
        graph = MappingGraph(adjacency)
        samples = 4000
        duration = 6.0
        plain_walk = ContinuousRandomWalk(graph, random.Random(101))
        plain_counts = {v: 0 for v in graph.vertices()}
        for _ in range(samples):
            plain_counts[plain_walk.run(0, duration).endpoint] += 1
        batched_walk = ContinuousRandomWalk(graph, random.Random(202))
        batched_counts = {v: 0 for v in graph.vertices()}
        for result in batched_walk.run_many([0] * samples, duration):
            batched_counts[result.endpoint] += 1
        statistic = 0.0
        for vertex in graph.vertices():
            first, second = plain_counts[vertex], batched_counts[vertex]
            if first + second:
                statistic += (first - second) ** 2 / (first + second)
        assert statistic < chi_square_critical(len(plain_counts) - 1)

    def test_biased_walk_on_overlay_matches_target(self):
        """The full simulated fast path still targets |C|/n on the overlay."""
        graph = seeded_overlay(vertices=6, seed=7)
        walk = BiasedClusterWalk(graph, random.Random(31), segment_duration=25.0)
        samples = 4000
        counts = {vertex: 0 for vertex in graph.vertices()}
        for _ in range(samples):
            counts[walk.run(0).cluster] += 1
        target = graph.target_distribution()
        statistic = chi_square_statistic(
            [counts[v] for v in sorted(counts)],
            [samples * target[v] for v in sorted(counts)],
        )
        assert statistic < chi_square_critical(len(counts) - 1)

    def test_run_many_validates_inputs(self):
        graph = MappingGraph({0: [1], 1: [0]})
        walk = ContinuousRandomWalk(graph, random.Random(1))
        from repro.errors import WalkError

        with pytest.raises(WalkError):
            walk.run_many([0, 99], duration=1.0)
        with pytest.raises(WalkError):
            walk.run_many([0], duration=-1.0)
        assert walk.run_many([], duration=1.0) == []

    def test_run_many_isolated_vertex(self):
        graph = MappingGraph({0: [], 1: [2], 2: [1]})
        walk = ContinuousRandomWalk(graph, random.Random(1))
        results = walk.run_many([0, 1], duration=5.0)
        assert results[0].endpoint == 0 and results[0].hops == 0
        assert results[1].hops > 0
