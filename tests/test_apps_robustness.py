"""Robustness tests for the application layer when clusters are captured.

The services' guarantees rest on every cluster being honest-majority; these
tests corrupt clusters deliberately (bypassing the protocol, by flipping the
ground-truth roles) and check that the failure modes are the documented ones:
forged inter-cluster messages, poisoned aggregates, Byzantine cluster-level
participants — i.e. the applications degrade exactly where the paper says the
assumptions end, and not before.
"""

from __future__ import annotations

import pytest

from repro import NowEngine, default_parameters
from repro.apps import (
    AggregationService,
    ClusterAgreementService,
    ClusteredBroadcast,
    SamplingService,
)
from repro.core.intercluster import InterClusterChannel
from repro.network.node import NodeRole


def build_engine(seed=33):
    params = default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)
    return NowEngine.bootstrap(params, initial_size=160, byzantine_fraction=0.1, seed=seed)


def capture_cluster(engine, cluster_id, fraction=1.0):
    """Flip members of ``cluster_id`` to Byzantine until ``fraction`` is reached."""
    members = engine.state.clusters.get(cluster_id).member_list()
    to_corrupt = int(round(fraction * len(members)))
    for node_id in members[:to_corrupt]:
        engine.state.nodes.get(node_id).role = NodeRole.BYZANTINE
    return engine.state.cluster_byzantine_fraction(cluster_id)


class TestBroadcastUnderCapture:
    def test_captured_origin_cannot_inject_valid_cluster_messages(self):
        engine = build_engine()
        origin = engine.state.clusters.cluster_ids()[0]
        capture_cluster(engine, origin, fraction=1.0)
        report = ClusteredBroadcast(engine).broadcast("payload", origin_cluster=origin)
        # The origin's own messages fail the more-than-half honest rule, so no
        # other cluster accepts the honest payload from it.
        assert report.clusters_reached == {origin}
        assert report.coverage(engine.cluster_count) < 1.0

    def test_captured_intermediate_cluster_cannot_block_dissemination(self):
        engine = build_engine()
        cluster_ids = engine.state.clusters.cluster_ids()
        victim = cluster_ids[1]
        capture_cluster(engine, victim, fraction=1.0)
        origin = cluster_ids[0]
        report = ClusteredBroadcast(engine).broadcast("payload", origin_cluster=origin)
        # A captured cluster still *receives* the payload (each receiving node
        # validates the sender cluster, which is honest), but nothing it
        # forwards is trusted; the expander overlay routes around it, so every
        # cluster is reached regardless.
        assert report.coverage(engine.cluster_count) == pytest.approx(1.0)
        assert origin in report.clusters_reached


class TestAggregationUnderCapture:
    def test_captured_cluster_poison_is_blocked_by_the_majority_rule(self):
        engine = build_engine()
        cluster_ids = engine.state.clusters.cluster_ids()
        victim = cluster_ids[-1]
        capture_cluster(engine, victim, fraction=1.0)
        values = {node_id: 1.0 for node_id in engine.active_nodes()}
        origin = cluster_ids[0]
        report = AggregationService(engine).aggregate_sum(
            values, origin_cluster=origin, byzantine_value=50.0
        )
        honest_total = report.exact_honest_value
        # The captured cluster cannot push its forged partial through the
        # more-than-half acceptance rule, so the aggregate never exceeds the
        # honest total; what can be lost is the captured cluster's own subtree
        # of the convergecast, which stays a small part of the whole.
        assert report.value <= honest_total
        assert report.value > 0.5 * honest_total

    def test_intact_system_is_exact(self):
        engine = build_engine()
        values = {node_id: 3.0 for node_id in engine.active_nodes()}
        report = AggregationService(engine).aggregate_sum(values, byzantine_value=99.0)
        assert report.value == pytest.approx(report.exact_honest_value)


class TestInterClusterChannelUnderCapture:
    def test_forged_payload_delivered_from_captured_sender(self):
        engine = build_engine()
        cluster_ids = engine.state.clusters.cluster_ids()
        sender, receiver = cluster_ids[0], cluster_ids[1]
        capture_cluster(engine, sender, fraction=0.8)
        channel = InterClusterChannel(engine.state)
        outcome = channel.send(sender, receiver, payload="honest", adversarial_payload="forged")
        assert outcome.forged
        assert outcome.payload == "forged"


class TestClusterAgreementUnderCapture:
    def test_compromised_clusters_are_reported_as_byzantine_participants(self):
        engine = build_engine()
        cluster_ids = engine.state.clusters.cluster_ids()
        victim = cluster_ids[0]
        capture_cluster(engine, victim, fraction=0.8)
        report = ClusterAgreementService(engine).decide()
        assert victim in report.compromised_clusters
        # One captured cluster out of several: cluster-level Phase King still
        # needs #clusters > 4f, which holds here, so agreement succeeds.
        if len(cluster_ids) > 4:
            assert report.agreement


class TestSamplingUnderCapture:
    def test_byzantine_sample_rate_tracks_global_fraction_after_capture(self):
        engine = build_engine()
        victim = engine.state.clusters.cluster_ids()[0]
        capture_cluster(engine, victim, fraction=1.0)
        global_fraction = engine.state.nodes.byzantine_fraction()
        samples = SamplingService(engine).sample_many(250)
        measured = SamplingService.byzantine_sample_fraction(samples)
        # Sampling remains uniform over nodes, so the Byzantine hit rate tracks
        # the (now higher) global fraction rather than exploding to 1.
        assert measured == pytest.approx(global_fraction, abs=0.1)
