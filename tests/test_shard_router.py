"""Unit tests for the sharded-execution router layer (``repro.shard.router``).

These cover the deterministic placement rules — slice assignment, the
least-loaded join rule, the rebalance planner — and the configuration guard
rails the :class:`~repro.shard.coordinator.ShardCoordinator` enforces up
front (unsupported adversaries, inline probes, baseline engines).
"""

from __future__ import annotations

import random

import pytest

from repro import Scenario
from repro.core.events import ChurnEvent
from repro.errors import ConfigurationError
from repro.network.node import NodeRole
from repro.params import default_parameters
from repro.scenarios.probes import CallbackProbe, CorruptionTrajectoryProbe
from repro.shard import ShardCoordinator, ShardDirectory, plan_rebalance, slice_sizes
from repro.shard.router import EventRouter, ShardedEngineFacade


# ----------------------------------------------------------------------
# slice_sizes
# ----------------------------------------------------------------------
def test_slice_sizes_even_and_remainder():
    assert slice_sizes(100, 4) == [25, 25, 25, 25]
    assert slice_sizes(103, 4) == [26, 26, 26, 25]
    assert slice_sizes(7, 1) == [7]


def test_slice_sizes_rejects_bad_arguments():
    with pytest.raises(ConfigurationError):
        slice_sizes(100, 0)
    with pytest.raises(ConfigurationError):
        slice_sizes(3, 4)


# ----------------------------------------------------------------------
# plan_rebalance
# ----------------------------------------------------------------------
def test_plan_rebalance_quiet_when_balanced():
    assert plan_rebalance([50, 50], threshold=16, floor=24) is None
    assert plan_rebalance([50, 45], threshold=16, floor=24) is None  # within threshold
    assert plan_rebalance([50], threshold=16, floor=24) is None  # one shard


def test_plan_rebalance_moves_half_the_gap():
    # gap 30 > threshold 16: move 15 from the largest to the smallest.
    assert plan_rebalance([80, 50], threshold=16, floor=24) == (0, 1, 15)
    # ties break to the lowest index on both sides.
    assert plan_rebalance([80, 80, 50, 50], threshold=16, floor=24) == (0, 2, 15)


def test_plan_rebalance_floor_pull_overrides_threshold():
    # spread within threshold, but shard 1 fell below the floor: pull it up.
    assert plan_rebalance([30, 20], threshold=16, floor=24) == (0, 1, 4)


def test_plan_rebalance_never_drains_donor_below_floor():
    # Ideal floor pull is 10, but the donor can only spare 2.
    assert plan_rebalance([26, 14], threshold=100, floor=24) == (0, 1, 2)
    # Donor at the floor itself: no move at all.
    assert plan_rebalance([24, 14], threshold=100, floor=24) is None


# ----------------------------------------------------------------------
# ShardDirectory
# ----------------------------------------------------------------------
def _directory_with_initial(sizes):
    directory = ShardDirectory(len(sizes))
    gid = 0
    for shard, size in enumerate(sizes):
        for _ in range(size):
            directory.register_initial(shard, gid, NodeRole.HONEST)
            gid += 1
    return directory


def test_directory_fresh_join_goes_least_loaded():
    directory = _directory_with_initial([5, 3, 4])
    shard, gid, fresh = directory.place_join(None, NodeRole.HONEST, time_step=1)
    assert (shard, fresh) == (1, True)
    assert gid == 12  # next id after the 12 initial nodes
    assert directory.sizes == [5, 4, 4]
    # Ties break to the lowest index.
    assert directory.place_join(None, NodeRole.HONEST, time_step=2)[0] == 1


def test_directory_rejoin_keeps_identity_and_flips_role():
    directory = _directory_with_initial([3, 3])
    shard = directory.remove_leave(0, time_step=1)
    assert shard == 0
    assert directory.sizes == [2, 3]
    # The departed node rejoins as Byzantine: same id, new role, placed
    # like a newcomer (least-loaded shard).
    new_shard, gid, fresh = directory.place_join(0, NodeRole.BYZANTINE, time_step=2)
    assert (gid, fresh) == (0, False)
    assert new_shard == 0
    assert 0 in directory.nodes.active_byzantine()


def test_directory_leave_of_unowned_node_rejected():
    directory = _directory_with_initial([2, 2])
    with pytest.raises(ConfigurationError):
        directory.remove_leave(99, time_step=1)


def test_directory_move_transfers_ownership():
    directory = _directory_with_initial([3, 3])
    directory.move(0, 1)
    assert directory.owner[0] == 1
    assert directory.sizes == [2, 4]
    with pytest.raises(ConfigurationError):
        directory.move(99, 0)


def test_directory_fingerprint_tracks_mutations():
    directory = _directory_with_initial([3, 3])
    before = directory.fingerprint()
    directory.move(0, 1)
    assert directory.fingerprint() != before


def test_directory_snapshot_roundtrip():
    directory = _directory_with_initial([3, 2])
    directory.remove_leave(1, time_step=3)
    directory.place_join(None, NodeRole.BYZANTINE, time_step=4)
    restored = ShardDirectory.from_snapshot(directory.snapshot_state())
    assert restored.fingerprint() == directory.fingerprint()


# ----------------------------------------------------------------------
# EventRouter
# ----------------------------------------------------------------------
def test_router_rejects_contact_cluster_joins():
    router = EventRouter(_directory_with_initial([3, 3]))
    with pytest.raises(ConfigurationError, match="contact_cluster"):
        router.route(ChurnEvent.join(contact_cluster=7), step=1)


def test_router_rejects_anonymous_leaves():
    router = EventRouter(_directory_with_initial([3, 3]))
    with pytest.raises(ConfigurationError, match="must name"):
        router.route(ChurnEvent.leave(None), step=1)


def test_router_stamps_composite_size_after():
    directory = _directory_with_initial([3, 3])
    router = EventRouter(directory)
    routed = router.route(ChurnEvent.join(), step=1)
    assert routed.size_after == 7
    routed = router.route(ChurnEvent.leave(0), step=2)
    assert routed.size_after == 6


# ----------------------------------------------------------------------
# ShardedEngineFacade
# ----------------------------------------------------------------------
def test_facade_random_member_requires_explicit_rng():
    params = default_parameters(max_size=256)
    facade = ShardedEngineFacade(params, _directory_with_initial([3, 3]))
    with pytest.raises(ConfigurationError):
        facade.random_member()
    member = facade.random_member(rng=random.Random(1))
    assert 0 <= member < 6


def test_facade_has_no_composite_cluster_namespace():
    params = default_parameters(max_size=256)
    facade = ShardedEngineFacade(params, _directory_with_initial([3, 3]))
    with pytest.raises(ConfigurationError):
        facade.random_cluster(random.Random(1))


# ----------------------------------------------------------------------
# Coordinator guard rails
# ----------------------------------------------------------------------
def _sharded_scenario(**overrides):
    fields = dict(
        name="guard",
        max_size=256,
        initial_size=200,
        tau=0.1,
        seed=3,
        steps=20,
        shards=2,
    )
    fields.update(overrides)
    return Scenario(**fields)


def test_coordinator_rejects_baseline_engines():
    with pytest.raises(ConfigurationError, match="'now' engine"):
        ShardCoordinator(_sharded_scenario(engine="no_shuffle"))


def test_coordinator_rejects_cluster_aware_adversaries():
    scenario = _sharded_scenario(adversary={"kind": "join_leave", "target_cluster": 0})
    with pytest.raises(ConfigurationError, match="not supported under sharded"):
        ShardCoordinator(scenario)


def test_coordinator_rejects_inline_probes():
    probe = CallbackProbe(lambda engine, report, step: None, name="inline-cb")
    with pytest.raises(ConfigurationError, match="inline probes"):
        ShardCoordinator(_sharded_scenario(), probes=[probe])


def test_coordinator_rejects_keep_reports():
    with pytest.raises(ConfigurationError, match="keep_reports"):
        ShardCoordinator(_sharded_scenario(keep_reports=True))


def test_coordinator_rejects_undersized_slices():
    # 200 nodes over 4 shards = 50 per slice, below the 2-cluster minimum
    # (2 x 24 = 48)... 50 passes; use 8 shards (25 per slice) to trip it.
    with pytest.raises(ConfigurationError, match="two-cluster minimum"):
        ShardCoordinator(_sharded_scenario(shards=8))


def test_coordinator_rejects_unknown_shard_options():
    with pytest.raises(ConfigurationError, match="unknown shard_options"):
        ShardCoordinator(_sharded_scenario(shard_options={"bogus": 1}))


def test_build_runner_refuses_sharded_scenarios():
    with pytest.raises(ConfigurationError, match="shards"):
        _sharded_scenario().build_runner()


def test_scenario_run_dispatches_to_coordinator():
    result = _sharded_scenario(steps=30).run(probes=[CorruptionTrajectoryProbe()])
    assert result.shards == 2
    assert result.steps == 30
    assert "corruption" in result.probes
