"""Unit tests for flooding discovery, the scalable-agreement model and committee election."""

from __future__ import annotations

import random

import pytest

from repro.agreement.broadcast import all_to_all_exchange, flood_broadcast
from repro.agreement.committee import CommitteeElection
from repro.agreement.scalable import ScalableAgreementModel
from repro.errors import AgreementError
from repro.network.metrics import CommunicationMetrics
from repro.network.node import NodeDescriptor, NodeRole
from repro.network.topology import KnowledgeGraph


def build_line_network(size: int, byzantine=()):
    """A path graph: worst case diameter for discovery."""
    knowledge = KnowledgeGraph()
    descriptors = {}
    for node_id in range(size):
        role = NodeRole.BYZANTINE if node_id in byzantine else NodeRole.HONEST
        descriptors[node_id] = NodeDescriptor(node_id=node_id, role=role)
        knowledge.add_node(node_id)
    for node_id in range(size - 1):
        knowledge.connect(node_id, node_id + 1)
    return knowledge, descriptors


class TestFloodBroadcast:
    def test_all_honest_nodes_learn_everything(self):
        knowledge, descriptors = build_line_network(10)
        initial = {node_id: {node_id} for node_id in range(10)}
        learned, metrics = flood_broadcast(knowledge, descriptors, initial)
        for node_id in range(10):
            assert learned[node_id] == set(range(10))
        assert metrics.messages > 0
        assert metrics.rounds >= 9  # at least the diameter

    def test_silent_byzantine_delay_but_do_not_block_when_graph_is_rich(self):
        """On a clique, silent Byzantine nodes cannot prevent discovery."""
        knowledge = KnowledgeGraph()
        knowledge.connect_clique(range(8))
        descriptors = {
            node_id: NodeDescriptor(
                node_id=node_id,
                role=NodeRole.BYZANTINE if node_id in (0, 1) else NodeRole.HONEST,
            )
            for node_id in range(8)
        }
        initial = {node_id: {node_id} for node_id in range(8)}
        learned, _ = flood_broadcast(knowledge, descriptors, initial)
        honest = [node_id for node_id in range(8) if node_id not in (0, 1)]
        for node_id in honest:
            # Every honest node learns at least every honest identifier.
            assert set(honest).issubset(learned[node_id])

    def test_all_to_all_exchange_cost(self):
        metrics = CommunicationMetrics()
        count = all_to_all_exchange(range(6), metrics, label="randnum")
        assert count == 30
        assert metrics.messages == 30
        assert metrics.rounds == 1


class TestScalableAgreementModel:
    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            ScalableAgreementModel(random.Random(0), tolerance=0.0)

    def test_below_threshold_agrees_on_honest_plurality(self):
        model = ScalableAgreementModel(random.Random(0))
        inputs = {node: (0 if node < 6 else 1) for node in range(9)}
        outcome = model.decide(inputs, byzantine={8})
        assert outcome.agreement
        assert outcome.validity
        assert outcome.decided_value == 0

    def test_above_threshold_fails_visibly(self):
        model = ScalableAgreementModel(random.Random(0))
        inputs = {node: node % 2 for node in range(9)}
        outcome = model.decide(inputs, byzantine={0, 1, 2})  # exactly 1/3
        assert not outcome.agreement

    def test_cost_model_scales_superlinearly(self):
        model = ScalableAgreementModel(random.Random(0))
        small = model.message_cost(100)
        large = model.message_cost(400)
        # n^1.5 scaling: quadrupling n multiplies cost by ~8 (plus log factor).
        assert large > 7 * small
        assert model.message_cost(1) == 0
        assert model.round_cost(256) > 0

    def test_empty_inputs(self):
        model = ScalableAgreementModel(random.Random(0))
        outcome = model.decide({}, byzantine=set())
        assert outcome.agreement and outcome.validity


class TestCommitteeElection:
    def test_committee_is_deterministic_in_the_seed(self):
        ordering_a = CommitteeElection.ordering_from_seed([5, 3, 9, 1], seed=77)
        ordering_b = CommitteeElection.ordering_from_seed([1, 3, 5, 9], seed=77)
        assert ordering_a == ordering_b

    def test_elect_returns_requested_size(self):
        model = ScalableAgreementModel(random.Random(1))
        election = CommitteeElection(model, random.Random(2))
        result = election.elect(list(range(60)), byzantine=set(range(6)), committee_size=10)
        assert len(result.committee) == 10
        assert set(result.committee).issubset(set(range(60)))
        assert result.outcome.messages > 0

    def test_committee_honest_fraction_reported(self):
        model = ScalableAgreementModel(random.Random(1))
        election = CommitteeElection(model, random.Random(2))
        result = election.elect(list(range(40)), byzantine=set(), committee_size=8)
        assert result.honest_fraction == 1.0
        assert result.honest_supermajority

    def test_committee_mostly_honest_statistically(self):
        """With tau = 0.2 the average committee corruption is about 0.2."""
        model = ScalableAgreementModel(random.Random(1))
        fractions = []
        for seed in range(30):
            election = CommitteeElection(model, random.Random(seed))
            byzantine = set(range(0, 200, 5))  # 20%
            result = election.elect(list(range(200)), byzantine=byzantine, committee_size=15)
            fractions.append(1.0 - result.honest_fraction)
        mean_corruption = sum(fractions) / len(fractions)
        assert mean_corruption == pytest.approx(0.2, abs=0.08)

    def test_elect_rejects_empty_population(self):
        model = ScalableAgreementModel(random.Random(1))
        election = CommitteeElection(model, random.Random(2))
        with pytest.raises(AgreementError):
            election.elect([], byzantine=set(), committee_size=3)

    def test_elect_rejects_zero_size(self):
        model = ScalableAgreementModel(random.Random(1))
        election = CommitteeElection(model, random.Random(2))
        with pytest.raises(AgreementError):
            election.elect([1, 2, 3], byzantine=set(), committee_size=0)

    def test_failed_agreement_raises(self):
        model = ScalableAgreementModel(random.Random(1))
        election = CommitteeElection(model, random.Random(2))
        with pytest.raises(AgreementError):
            # One third corrupted -> the model refuses to agree.
            election.elect(list(range(9)), byzantine={0, 1, 2}, committee_size=3)

    def test_recommended_committee_size(self):
        assert CommitteeElection.recommended_committee_size(1024, k=2.0) == 20
        assert CommitteeElection.recommended_committee_size(1, k=2.0) == 1
