"""Open-loop arrival schedules: Poisson process, mix parsing, trace files."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    DEFAULT_MIX,
    MIX_OPERATIONS,
    Arrival,
    PoissonArrivals,
    load_arrival_trace,
    parse_mix,
    save_arrival_trace,
)


class TestPoissonArrivals:
    def test_same_seed_same_schedule(self):
        first = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        second = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        assert first == second

    def test_different_seed_different_schedule(self):
        first = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        second = PoissonArrivals(rate=200.0, duration=2.0, seed=8).schedule()
        assert first != second

    def test_schedule_is_sorted_and_bounded(self):
        arrivals = PoissonArrivals(rate=500.0, duration=3.0, seed=1).schedule()
        times = [arrival.at for arrival in arrivals]
        assert times == sorted(times)
        assert all(0.0 < at < 3.0 for at in times)

    def test_rate_is_approximately_honoured(self):
        rate, duration = 400.0, 5.0
        arrivals = PoissonArrivals(rate=rate, duration=duration, seed=3).schedule()
        expected = rate * duration
        # Poisson count: stddev is sqrt(expected); 5 sigma keeps this stable.
        assert abs(len(arrivals) - expected) < 5 * expected**0.5

    def test_mix_proportions_are_approximately_honoured(self):
        mix = {"sample": 0.7, "join": 0.2, "leave": 0.1}
        arrivals = PoissonArrivals(rate=1000.0, duration=4.0, mix=mix, seed=5).schedule()
        counts = {op: 0 for op in mix}
        for arrival in arrivals:
            counts[arrival.op] += 1
        total = len(arrivals)
        for op, weight in mix.items():
            assert abs(counts[op] / total - weight) < 0.05

    def test_default_mix_used_when_unspecified(self):
        process = PoissonArrivals(rate=10.0, duration=1.0)
        assert process.mix == DEFAULT_MIX
        assert process.offered_load == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0, "duration": 1.0},
            {"rate": -5.0, "duration": 1.0},
            {"rate": 10.0, "duration": 0.0},
            {"rate": 10.0, "duration": 1.0, "mix": {}},
            {"rate": 10.0, "duration": 1.0, "mix": {"teleport": 1.0}},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(**kwargs)


class TestParseMix:
    def test_normalises_weights(self):
        mix = parse_mix("sample=8, join=1, leave=1")
        assert mix == {"sample": 0.8, "join": 0.1, "leave": 0.1}

    def test_repeated_ops_accumulate(self):
        assert parse_mix("sample=1,sample=3") == {"sample": 1.0}

    def test_zero_weight_ops_dropped(self):
        mix = parse_mix("sample=1,join=0")
        assert mix == {"sample": 1.0}

    @pytest.mark.parametrize(
        "text",
        ["sample", "warp=1", "sample=abc", "sample=-1", "sample=0", ""],
    )
    def test_malformed_mix_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_mix(text)


class TestArrivalTraceFiles:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "arrivals.jsonl")
        arrivals = PoissonArrivals(rate=100.0, duration=1.0, seed=2).schedule()
        save_arrival_trace(path, arrivals)
        assert load_arrival_trace(path) == arrivals

    def test_load_sorts_by_time(self, tmp_path):
        path = str(tmp_path / "arrivals.jsonl")
        save_arrival_trace(
            path,
            [Arrival(at=1.5, op="sample"), Arrival(at=0.5, op="join")],
        )
        loaded = load_arrival_trace(path)
        assert [arrival.at for arrival in loaded] == [0.5, 1.5]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        path.write_text('{"at": 0.1, "op": "sample"}\n\n{"at": 0.2, "op": "leave"}\n')
        assert len(load_arrival_trace(str(path))) == 2

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"at": 0.1}',
            '{"op": "sample"}',
            '{"at": "soon", "op": "sample"}',
            '{"at": 0.1, "op": "teleport"}',
            '{"at": -0.1, "op": "sample"}',
        ],
    )
    def test_malformed_lines_rejected_with_location(self, tmp_path, line):
        path = tmp_path / "arrivals.jsonl"
        path.write_text('{"at": 0.0, "op": "sample"}\n' + line + "\n")
        with pytest.raises(ConfigurationError, match=":2:"):
            load_arrival_trace(str(path))

    def test_mix_operations_cover_protocol_subset(self):
        from repro.service.protocol import OPERATIONS

        assert set(MIX_OPERATIONS) <= OPERATIONS
