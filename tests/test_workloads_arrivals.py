"""Open-loop arrival schedules: Poisson process, log-normal session
lifecycles, diurnal modulation, mix parsing, trace files."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    DEFAULT_MIX,
    DEFAULT_SESSION_MIX,
    MIX_OPERATIONS,
    Arrival,
    DiurnalProfile,
    LogNormalSessions,
    PoissonArrivals,
    load_arrival_trace,
    parse_mix,
    save_arrival_trace,
)


class TestPoissonArrivals:
    def test_same_seed_same_schedule(self):
        first = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        second = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        assert first == second

    def test_different_seed_different_schedule(self):
        first = PoissonArrivals(rate=200.0, duration=2.0, seed=7).schedule()
        second = PoissonArrivals(rate=200.0, duration=2.0, seed=8).schedule()
        assert first != second

    def test_schedule_is_sorted_and_bounded(self):
        arrivals = PoissonArrivals(rate=500.0, duration=3.0, seed=1).schedule()
        times = [arrival.at for arrival in arrivals]
        assert times == sorted(times)
        assert all(0.0 < at < 3.0 for at in times)

    def test_rate_is_approximately_honoured(self):
        rate, duration = 400.0, 5.0
        arrivals = PoissonArrivals(rate=rate, duration=duration, seed=3).schedule()
        expected = rate * duration
        # Poisson count: stddev is sqrt(expected); 5 sigma keeps this stable.
        assert abs(len(arrivals) - expected) < 5 * expected**0.5

    def test_mix_proportions_are_approximately_honoured(self):
        mix = {"sample": 0.7, "join": 0.2, "leave": 0.1}
        arrivals = PoissonArrivals(rate=1000.0, duration=4.0, mix=mix, seed=5).schedule()
        counts = {op: 0 for op in mix}
        for arrival in arrivals:
            counts[arrival.op] += 1
        total = len(arrivals)
        for op, weight in mix.items():
            assert abs(counts[op] / total - weight) < 0.05

    def test_default_mix_used_when_unspecified(self):
        process = PoissonArrivals(rate=10.0, duration=1.0)
        assert process.mix == DEFAULT_MIX
        assert process.offered_load == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0, "duration": 1.0},
            {"rate": -5.0, "duration": 1.0},
            {"rate": 10.0, "duration": 0.0},
            {"rate": 10.0, "duration": 1.0, "mix": {}},
            {"rate": 10.0, "duration": 1.0, "mix": {"teleport": 1.0}},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(**kwargs)


class TestDiurnalProfile:
    def test_scale_swings_between_trough_and_peak(self):
        profile = DiurnalProfile(day_length=100.0, amplitude=0.8)
        assert profile.scale(0.0) == pytest.approx(0.2)
        assert profile.scale(50.0) == pytest.approx(1.8)
        assert profile.peak == pytest.approx(1.8)

    def test_mean_scale_over_a_cycle_is_one(self):
        profile = DiurnalProfile(day_length=10.0, amplitude=0.6)
        samples = [profile.scale(10.0 * i / 1000) for i in range(1000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"day_length": 0.0},
            {"day_length": -1.0},
            {"day_length": 10.0, "amplitude": 0.0},
            {"day_length": 10.0, "amplitude": 1.0},
            {"day_length": 10.0, "amplitude": 1.5},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DiurnalProfile(**kwargs)

    def test_thinned_poisson_is_deterministic_and_rate_preserving(self):
        profile = DiurnalProfile(day_length=4.0, amplitude=0.8)
        first = PoissonArrivals(rate=400.0, duration=8.0, seed=6, diurnal=profile)
        second = PoissonArrivals(rate=400.0, duration=8.0, seed=6, diurnal=profile)
        arrivals = first.schedule()
        assert arrivals == second.schedule()
        # Thinning keeps --rate the cycle average (duration = 2 full cycles).
        expected = 400.0 * 8.0
        assert abs(len(arrivals) - expected) < 5 * expected**0.5

    def test_thinning_shapes_the_cycle(self):
        """More arrivals land mid-cycle (the peak) than at the trough."""
        profile = DiurnalProfile(day_length=10.0, amplitude=0.8)
        arrivals = PoissonArrivals(
            rate=600.0, duration=10.0, seed=2, diurnal=profile
        ).schedule()
        trough = sum(1 for a in arrivals if a.at < 2.0 or a.at >= 8.0)
        peak = sum(1 for a in arrivals if 3.0 <= a.at < 7.0)
        assert peak > 2 * trough


class TestLogNormalSessions:
    def test_same_seed_same_schedule(self):
        first = LogNormalSessions(rate=150.0, duration=4.0, seed=7).schedule()
        second = LogNormalSessions(rate=150.0, duration=4.0, seed=7).schedule()
        assert first == second
        assert first != LogNormalSessions(rate=150.0, duration=4.0, seed=8).schedule()

    def test_schedule_is_sorted_with_paired_lifecycles(self):
        arrivals = LogNormalSessions(
            rate=200.0, duration=5.0, mean_session=2.0, seed=3
        ).schedule()
        times = [a.at for a in arrivals]
        assert times == sorted(times)
        joins = sum(1 for a in arrivals if a.op == "join")
        leaves = sum(1 for a in arrivals if a.op == "leave")
        assert joins == leaves > 0
        # Every leave is a session that joined earlier: at every prefix of
        # the timetable the leave count never exceeds the join count.
        balance = 0
        for arrival in arrivals:
            if arrival.op == "join":
                balance += 1
            elif arrival.op == "leave":
                balance -= 1
            assert balance >= 0
        assert balance == 0

    def test_aggregate_rate_is_approximately_honoured(self):
        rate, duration = 300.0, 6.0
        generator = LogNormalSessions(
            rate=rate, duration=duration, mean_session=1.5, sigma=0.8, seed=5
        )
        arrivals = generator.schedule()
        expected = rate * duration
        # Session lengths add variance beyond the Poisson count, so the
        # tolerance is looser than the plain-process test's 5 sigma.
        assert abs(len(arrivals) - expected) < 0.25 * expected

    def test_sessions_extend_past_the_arrival_window(self):
        """Truncating the tail would defeat a heavy-tail generator."""
        generator = LogNormalSessions(
            rate=120.0, duration=3.0, mean_session=4.0, sigma=1.5, seed=9
        )
        arrivals = generator.schedule()
        assert max(a.at for a in arrivals) > 3.0

    def test_session_lengths_are_heavy_tailed(self):
        """With sigma=1.2 the mean sits far above the median length."""
        generator = LogNormalSessions(
            rate=400.0, duration=10.0, mean_session=5.0, sigma=1.2, seed=4
        )
        median = math.exp(generator.mu)
        assert generator.mean_session / median == pytest.approx(
            math.exp(1.2 * 1.2 / 2.0)
        )
        assert generator.mean_session / median > 2.0

    def test_in_session_mix_defaults_to_read_operations(self):
        generator = LogNormalSessions(rate=50.0, duration=2.0)
        assert generator.mix == DEFAULT_SESSION_MIX
        ops = {a.op for a in generator.schedule()}
        assert ops <= set(DEFAULT_SESSION_MIX) | {"join", "leave"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0, "duration": 1.0},
            {"rate": 10.0, "duration": 0.0},
            {"rate": 10.0, "duration": 1.0, "mean_session": 0.0},
            {"rate": 10.0, "duration": 1.0, "sigma": 0.0},
            {"rate": 10.0, "duration": 1.0, "op_rate": -1.0},
            {"rate": 10.0, "duration": 1.0, "mix": {}},
            {"rate": 10.0, "duration": 1.0, "mix": {"join": 1.0}},
            {"rate": 10.0, "duration": 1.0, "mix": {"leave": 1.0}},
            {"rate": 10.0, "duration": 1.0, "mix": {"teleport": 1.0}},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LogNormalSessions(**kwargs)

    def test_schedule_round_trips_through_the_trace_format(self, tmp_path):
        path = str(tmp_path / "sessions.jsonl")
        arrivals = LogNormalSessions(
            rate=100.0, duration=2.0, seed=2, diurnal=DiurnalProfile(day_length=2.0)
        ).schedule()
        save_arrival_trace(path, arrivals)
        assert load_arrival_trace(path) == arrivals


class TestParseMix:
    def test_normalises_weights(self):
        mix = parse_mix("sample=8, join=1, leave=1")
        assert mix == {"sample": 0.8, "join": 0.1, "leave": 0.1}

    def test_repeated_ops_accumulate(self):
        assert parse_mix("sample=1,sample=3") == {"sample": 1.0}

    def test_zero_weight_ops_dropped(self):
        mix = parse_mix("sample=1,join=0")
        assert mix == {"sample": 1.0}

    @pytest.mark.parametrize(
        "text",
        ["sample", "warp=1", "sample=abc", "sample=-1", "sample=0", ""],
    )
    def test_malformed_mix_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_mix(text)


class TestArrivalTraceFiles:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "arrivals.jsonl")
        arrivals = PoissonArrivals(rate=100.0, duration=1.0, seed=2).schedule()
        save_arrival_trace(path, arrivals)
        assert load_arrival_trace(path) == arrivals

    def test_load_sorts_by_time(self, tmp_path):
        path = str(tmp_path / "arrivals.jsonl")
        save_arrival_trace(
            path,
            [Arrival(at=1.5, op="sample"), Arrival(at=0.5, op="join")],
        )
        loaded = load_arrival_trace(path)
        assert [arrival.at for arrival in loaded] == [0.5, 1.5]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        path.write_text('{"at": 0.1, "op": "sample"}\n\n{"at": 0.2, "op": "leave"}\n')
        assert len(load_arrival_trace(str(path))) == 2

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"at": 0.1}',
            '{"op": "sample"}',
            '{"at": "soon", "op": "sample"}',
            '{"at": 0.1, "op": "teleport"}',
            '{"at": -0.1, "op": "sample"}',
        ],
    )
    def test_malformed_lines_rejected_with_location(self, tmp_path, line):
        path = tmp_path / "arrivals.jsonl"
        path.write_text('{"at": 0.0, "op": "sample"}\n' + line + "\n")
        with pytest.raises(ConfigurationError, match=":2:"):
            load_arrival_trace(str(path))

    def test_mix_operations_cover_protocol_subset(self):
        from repro.service.protocol import OPERATIONS

        assert set(MIX_OPERATIONS) <= OPERATIONS
