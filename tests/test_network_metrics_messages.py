"""Unit tests for messages, metrics ledgers and the metrics registry."""

from __future__ import annotations

import pytest

from repro.network.message import Message, MessageKind
from repro.network.metrics import CommunicationMetrics, MetricsRegistry


class TestMessage:
    def test_unique_ids(self):
        first = Message(sender=1, receiver=2)
        second = Message(sender=1, receiver=2)
        assert first.message_id != second.message_id

    def test_with_round_stamps_copy(self):
        original = Message(sender=1, receiver=2, topic="hello", payload=5)
        stamped = original.with_round(9)
        assert stamped.round_sent == 9
        assert original.round_sent is None
        assert stamped.message_id == original.message_id
        assert stamped.payload == 5

    def test_describe_mentions_endpoints(self):
        message = Message(sender=3, receiver=4, kind=MessageKind.WALK, topic="hop")
        text = message.describe()
        assert "3->4" in text
        assert "walk" in text

    def test_kind_string(self):
        assert str(MessageKind.RANDNUM) == "randnum"


class TestCommunicationMetrics:
    def test_charges_accumulate(self):
        metrics = CommunicationMetrics()
        metrics.charge_messages(10, kind=MessageKind.WALK, label="randcl")
        metrics.charge_messages(5, kind=MessageKind.RANDNUM, label="randcl")
        metrics.charge_rounds(3, label="randcl")
        assert metrics.messages == 15
        assert metrics.rounds == 3
        assert metrics.by_kind["walk"] == 10
        assert metrics.by_kind["randnum"] == 5
        assert metrics.by_label["randcl"] == 15
        assert metrics.rounds_by_label["randcl"] == 3

    def test_rejects_negative_counts(self):
        metrics = CommunicationMetrics()
        with pytest.raises(ValueError):
            metrics.charge_messages(-1)
        with pytest.raises(ValueError):
            metrics.charge_rounds(-1)

    def test_merge_combines_all_counters(self):
        first = CommunicationMetrics()
        first.charge_messages(4, kind=MessageKind.WALK, label="a")
        first.charge_rounds(1, label="a")
        second = CommunicationMetrics()
        second.charge_messages(6, kind=MessageKind.WALK, label="a")
        second.charge_messages(2, kind=MessageKind.CONTROL, label="b")
        second.charge_rounds(2, label="b")
        first.merge(second)
        assert first.messages == 12
        assert first.rounds == 3
        assert first.by_label["a"] == 10
        assert first.by_label["b"] == 2

    def test_snapshot_is_plain_data(self):
        metrics = CommunicationMetrics()
        metrics.charge_messages(1, label="x")
        snap = metrics.snapshot()
        assert snap["messages"] == 1
        assert isinstance(snap["by_label"], dict)

    def test_reset_zeroes_everything(self):
        metrics = CommunicationMetrics()
        metrics.charge_messages(7, label="x")
        metrics.charge_rounds(2)
        metrics.reset()
        assert metrics.messages == 0
        assert metrics.rounds == 0
        assert metrics.by_label == {}


class TestMetricsRegistry:
    def test_scope_is_created_once(self):
        registry = MetricsRegistry()
        scope = registry.scope("join")
        scope.charge_messages(3)
        assert registry.scope("join").messages == 3
        assert "join" in registry.names()

    def test_total_aggregates_scopes(self):
        registry = MetricsRegistry()
        registry.scope("join").charge_messages(3)
        registry.scope("leave").charge_messages(4)
        registry.scope("leave").charge_rounds(2)
        total = registry.total()
        assert total.messages == 7
        assert total.rounds == 2

    def test_reset_single_scope(self):
        registry = MetricsRegistry()
        registry.scope("join").charge_messages(3)
        registry.scope("leave").charge_messages(4)
        registry.reset("join")
        assert registry.scope("join").messages == 0
        assert registry.scope("leave").messages == 4

    def test_reset_all(self):
        registry = MetricsRegistry()
        registry.scope("a").charge_messages(1)
        registry.scope("b").charge_messages(2)
        registry.reset()
        assert registry.total().messages == 0

    def test_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.scope("join").charge_messages(1)
        snap = registry.snapshot()
        assert set(snap.keys()) == {"join"}
