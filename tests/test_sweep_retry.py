"""Retry-on-worker-failure semantics of :class:`~repro.experiments.sweep.SweepRunner`.

A transient failure must cost one retry, not the sweep; a persistent failure
must yield an addressable ``failed: True`` record that aggregation excludes
and that a later ``--resume`` run re-executes instead of serving as done.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    SweepRunner,
    SweepSpec,
    failed_sweep_record,
    load_sweep_progress,
    run_sweep_payload,
)

SPEC_FIELDS = dict(
    name="retry-sweep",
    scenario=dict(
        name="tiny",
        max_size=256,
        initial_size=100,
        tau=0.1,
        steps=10,
    ),
    seeds=[1, 2],
    workers=1,
)


def _spec(**overrides):
    fields = dict(SPEC_FIELDS)
    fields.update(overrides)
    return SweepSpec.from_dict(fields)


class _FlakyPayload:
    """Stands in for ``run_sweep_payload``: fails the first N calls per unit."""

    def __init__(self, failures_per_unit):
        self.failures_per_unit = failures_per_unit
        self.attempts = {}

    def __call__(self, payload):
        key = payload["seed"]
        count = self.attempts.get(key, 0)
        self.attempts[key] = count + 1
        if count < self.failures_per_unit:
            raise RuntimeError(f"transient failure for seed {key}")
        return run_sweep_payload(payload)


def test_transient_failure_is_retried_once(monkeypatch):
    flaky = _FlakyPayload(failures_per_unit=1)
    monkeypatch.setattr("repro.experiments.sweep.run_sweep_payload", flaky)
    result = SweepRunner(_spec()).run()
    assert result.failures() == []
    assert len(result.records) == 2
    assert flaky.attempts == {1: 2, 2: 2}  # one failure + one success each


def test_persistent_failure_yields_failed_record(monkeypatch):
    flaky = _FlakyPayload(failures_per_unit=99)
    monkeypatch.setattr("repro.experiments.sweep.run_sweep_payload", flaky)
    result = SweepRunner(_spec(seeds=[1])).run()
    assert flaky.attempts == {1: 2}  # first try + exactly one retry
    failures = result.failures()
    assert len(failures) == 1
    record = failures[0]
    assert record["failed"] is True
    assert "transient failure" in record["error"]
    assert record["seed"] == 1
    # Failed units never reach the aggregates.
    assert result.records_for(record["point"]) == []
    assert result.aggregate(record["point"]) == {}


def test_failed_units_are_rerun_on_resume(monkeypatch, tmp_path):
    progress = str(tmp_path / "progress.jsonl")
    always_fail = _FlakyPayload(failures_per_unit=99)
    monkeypatch.setattr("repro.experiments.sweep.run_sweep_payload", always_fail)
    runner = SweepRunner(_spec(seeds=[1]))
    first = runner.run(resume_path=progress)
    assert len(first.failures()) == 1
    # The failure is in the progress file, addressable by unit identity...
    assert any(record.get("failed") for record in load_sweep_progress(progress).values())

    # ...but a resume does NOT serve it as completed: the unit re-runs, and
    # with the fault gone it succeeds and overwrites the failure (last wins).
    monkeypatch.setattr("repro.experiments.sweep.run_sweep_payload", run_sweep_payload)
    second = SweepRunner(_spec(seeds=[1]))
    result = second.run(resume_path=progress)
    assert second.resumed_count == 0
    assert result.failures() == []
    assert result.records[0]["events"] > 0
    cached = load_sweep_progress(progress)
    assert all(not record.get("failed") for record in cached.values())

    # A third run serves the now-successful record from the file.
    third = SweepRunner(_spec(seeds=[1]))
    third_result = third.run(resume_path=progress)
    assert third.resumed_count == 1
    assert third_result.records == result.records


def test_failed_record_carries_unit_identity():
    payload = {
        "sweep": "s",
        "point": {"tau": 0.2},
        "seed": 7,
        "spec_digest": "abc123",
        "scenario": {"name": "unit"},
    }
    record = failed_sweep_record(payload, ValueError("boom"))
    assert record["failed"] is True
    assert record["error"] == "ValueError: boom"
    assert record["point"] == {"tau": 0.2}
    assert record["seed"] == 7
    assert record["spec_digest"] == "abc123"
    assert record["scenario"] == "unit"
    json.dumps(record)  # must stay JSONL-serialisable


def test_multiprocess_path_still_succeeds():
    # The retry bookkeeping must not disturb the happy path of the process
    # pool (futures are re-keyed by (index, payload, attempt) now).
    result = SweepRunner(_spec(workers=2)).run()
    assert result.failures() == []
    assert len(result.records) == 2
    assert all(record["events"] > 0 for record in result.records)
