"""Integration tests: end-to-end scenarios reproducing the paper's claims at small scale.

Each test is a miniature version of one of the experiments in docs/ARCHITECTURE.md,
small enough to run in seconds but still exercising the full stack
(initialization, maintenance, adversary, applications) together.
"""

from __future__ import annotations

import random

import pytest

from repro import EngineConfig, NowEngine, default_parameters
from repro.adversary import JoinLeaveAttack, TargetedDosAdversary
from repro.analysis import summarize_fractions
from repro.apps import AggregationService, ClusteredBroadcast
from repro.baselines import NoShuffleEngine, StaticClusterEngine
from repro.network.node import NodeRole
from repro.overlay.expansion import analyse_expansion
from repro.workloads import GrowthWorkload, MixedDriver, UniformChurn, drive

try:
    import numpy as _np
except ImportError:
    _np = None

requires_numpy = pytest.mark.skipif(
    _np is None, reason="requires numpy (spectral expansion analysis)"
)


def make_params(**overrides):
    defaults = dict(max_size=2048, k=3.0, l=2.0, alpha=0.1, tau=0.15, epsilon=0.05)
    defaults.update(overrides)
    return default_parameters(**defaults)


class TestTheorem3Miniature:
    """E1 in miniature: honest supermajority survives sustained churn."""

    def test_corruption_stays_below_one_third_under_churn(self):
        params = make_params(tau=0.1)
        engine = NowEngine.bootstrap(params, initial_size=200, byzantine_fraction=0.1, seed=11)
        workload = UniformChurn(random.Random(12), byzantine_join_fraction=0.1)
        drive(engine, workload, steps=120)
        worst_per_step = [report.worst_byzantine_fraction for report in engine.history]
        summary = summarize_fractions(worst_per_step)
        # With tau = 0.10 and clusters of ~33 nodes, no cluster should ever
        # approach one third over a short run.
        assert summary.maximum < 1.0 / 3.0
        assert engine.check_invariants().holds

    def test_full_exchange_resets_a_polluted_cluster(self):
        """Lemma 1 end to end: corrupt a cluster, let churn repair it."""
        params = make_params(tau=0.1)
        engine = NowEngine.bootstrap(params, initial_size=200, byzantine_fraction=0.1, seed=13)
        target = engine.state.clusters.cluster_ids()[0]
        # Artificially corrupt 40% of the target cluster's members.
        members = engine.state.clusters.get(target).member_list()
        for node_id in members[: int(0.4 * len(members))]:
            engine.state.nodes.get(node_id).role = NodeRole.BYZANTINE
        assert engine.state.cluster_byzantine_fraction(target) >= 0.35
        # A single leave event from that cluster triggers a full exchange of it.
        departing = members[-1]
        engine.leave(departing)
        if target in engine.state.clusters:
            fraction_after = engine.state.cluster_byzantine_fraction(target)
            assert fraction_after < 0.35


class TestJoinLeaveAttackComparison:
    """E7 in miniature: shuffling defeats the join-leave attack, no-shuffle falls."""

    def test_now_resists_while_no_shuffle_is_captured(self):
        params = make_params(tau=0.15)
        now_engine = NowEngine.bootstrap(
            params, initial_size=200, byzantine_fraction=0.15, seed=21
        )
        baseline = NoShuffleEngine.bootstrap(
            params, initial_size=200, byzantine_fraction=0.15, seed=21
        )
        now_target = now_engine.state.clusters.cluster_ids()[0]
        base_target = baseline.state.clusters.cluster_ids()[0]

        JoinLeaveAttack(random.Random(1), target_cluster=now_target).run(now_engine, steps=80)
        JoinLeaveAttack(random.Random(1), target_cluster=base_target).run(baseline, steps=80)

        baseline_fraction = (
            baseline.state.cluster_byzantine_fraction(base_target)
            if base_target in baseline.state.clusters
            else baseline.worst_cluster_fraction()
        )
        now_fraction = now_engine.worst_cluster_fraction()
        assert baseline_fraction >= 1.0 / 3.0, "the unshuffled target should be captured"
        assert now_fraction < baseline_fraction, "NOW must do strictly better"

    def test_dos_attack_with_background_churn(self):
        params = make_params(tau=0.15)
        engine = NowEngine.bootstrap(params, initial_size=200, byzantine_fraction=0.15, seed=31)
        mixed = MixedDriver(
            [
                (UniformChurn(random.Random(32), byzantine_join_fraction=0.15), 0.6),
                (TargetedDosAdversary(random.Random(33)), 0.4),
            ],
            random.Random(34),
        )
        mixed.run(engine, steps=100)
        assert engine.check_invariants(check_honest_majority=False).holds
        assert engine.worst_cluster_fraction() < 0.5


class TestPolynomialGrowth:
    """E6 in miniature: NOW keeps clusters small while the static scheme blows up."""

    @requires_numpy
    def test_growth_from_sqrt_n_towards_n(self):
        params = make_params(max_size=4096, tau=0.1)
        start = 128  # ~ 2 * sqrt(4096)
        target = 420
        now_engine = NowEngine.bootstrap(params, initial_size=start, byzantine_fraction=0.1, seed=41)
        static = StaticClusterEngine.bootstrap(
            params, initial_size=start, byzantine_fraction=0.1, seed=41
        )
        drive(now_engine, GrowthWorkload(random.Random(42), target_size=target), steps=600)
        drive(static, GrowthWorkload(random.Random(42), target_size=target), steps=600)

        assert now_engine.network_size == target
        assert static.network_size == target
        # NOW's cluster count grows, its max cluster size stays near k log N.
        now_max = max(now_engine.cluster_sizes().values())
        static_max = static.max_cluster_size()
        assert now_max <= params.split_threshold
        assert static_max > now_max
        assert static.cluster_count == static.history[0].cluster_count
        assert now_engine.cluster_count > static.cluster_count
        # The maintained overlay is still a healthy expander.
        report = analyse_expansion(now_engine.state.overlay.graph)
        assert report.connected
        assert report.max_degree <= params.overlay_degree_cap


class TestApplicationsEndToEnd:
    """E8 in miniature: applications run correctly on a maintained, churned system."""

    def test_broadcast_and_aggregation_after_churn(self):
        params = make_params(tau=0.1)
        engine = NowEngine.bootstrap(params, initial_size=200, byzantine_fraction=0.1, seed=51)
        drive(engine, UniformChurn(random.Random(52), byzantine_join_fraction=0.1), steps=60)

        broadcast = ClusteredBroadcast(engine).broadcast("announcement")
        assert broadcast.coverage(engine.cluster_count) == pytest.approx(1.0)
        assert broadcast.nodes_reached == engine.network_size

        aggregate = AggregationService(engine).count_active_nodes()
        honest = engine.network_size - len(engine.state.nodes.active_byzantine())
        assert aggregate.value == pytest.approx(honest)

    def test_strict_mode_round_trip(self):
        """An engine in strict mode completes a benign run without raising."""
        params = make_params(tau=0.05)
        engine = NowEngine.bootstrap(
            params,
            initial_size=200,
            byzantine_fraction=0.05,
            seed=61,
            config=EngineConfig(strict_compromise=True),
        )
        drive(engine, UniformChurn(random.Random(62), byzantine_join_fraction=0.05), steps=40)
        assert engine.check_invariants().holds
