"""Unit tests for the protocol parameter bundle."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.params import ProtocolParameters, default_parameters, log_base


class TestLogBase:
    def test_log_of_power_of_two(self):
        assert log_base(1024, 2.0) == pytest.approx(10.0)

    def test_log_guards_small_values(self):
        assert log_base(1.0) == 1.0
        assert log_base(0.5) == 1.0

    def test_log_other_base(self):
        assert log_base(1000, 10.0) == pytest.approx(3.0)


class TestParameterValidation:
    def test_default_construction(self):
        params = default_parameters(max_size=1024)
        assert params.max_size == 1024
        assert params.tau <= 1.0 / 3.0 - params.epsilon + 1e-12

    def test_rejects_tiny_max_size(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=2)

    def test_rejects_non_positive_k(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, k=0)

    def test_rejects_small_l(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, l=1.2)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, alpha=-0.1)

    def test_rejects_tau_above_resilience(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, tau=0.32, epsilon=0.05)

    def test_rejects_tau_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, tau=-0.1)

    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, epsilon=0.0)

    def test_rejects_bad_log_base(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(max_size=1024, log_base_value=1.0)

    def test_accepts_boundary_tau(self):
        params = ProtocolParameters(max_size=1024, tau=1.0 / 3.0 - 0.05, epsilon=0.05)
        assert params.tau == pytest.approx(1.0 / 3.0 - 0.05)


class TestDerivedQuantities:
    def test_target_cluster_size_is_k_log_n(self):
        params = ProtocolParameters(max_size=1024, k=2.0)
        assert params.target_cluster_size == 20  # 2 * log2(1024)

    def test_target_cluster_size_has_floor(self):
        params = ProtocolParameters(max_size=8, k=0.1)
        assert params.target_cluster_size >= 3

    def test_split_threshold_above_target(self):
        params = ProtocolParameters(max_size=1024, k=2.0, l=2.0)
        assert params.split_threshold > params.target_cluster_size
        assert params.split_threshold == 40

    def test_merge_threshold_below_target(self):
        params = ProtocolParameters(max_size=1024, k=2.0, l=2.0)
        assert params.merge_threshold < params.target_cluster_size
        assert params.merge_threshold == 10

    def test_split_after_bisection_stays_above_merge(self):
        """A freshly split half must not immediately trigger a merge (l > sqrt 2)."""
        for max_size in (256, 1024, 65536):
            params = ProtocolParameters(max_size=max_size, k=2.0, l=1.5)
            half_of_split = params.split_threshold // 2
            assert half_of_split >= params.merge_threshold

    def test_overlay_degree_target_and_cap(self):
        params = ProtocolParameters(max_size=1024, alpha=0.1, degree_constant=3.0)
        assert params.overlay_degree_target >= 2
        assert params.overlay_degree_cap >= params.overlay_degree_target

    def test_overlay_edge_probability_in_range(self):
        params = ProtocolParameters(max_size=1024)
        assert 0.0 < params.overlay_edge_probability <= 1.0

    def test_overlay_edge_probability_caps_at_one(self):
        params = ProtocolParameters(max_size=16)
        assert params.overlay_edge_probability == 1.0

    def test_lower_size_bound_default_is_sqrt(self):
        params = ProtocolParameters(max_size=1024)
        assert params.lower_size_bound == int(math.floor(math.sqrt(1024)))

    def test_lower_size_bound_override(self):
        params = ProtocolParameters(max_size=1024, min_size=50)
        assert params.lower_size_bound == 50

    def test_walk_length_grows_with_size(self):
        params = ProtocolParameters(max_size=65536)
        assert params.walk_length(65536) > params.walk_length(256)

    def test_walk_repeats_positive(self):
        params = ProtocolParameters(max_size=1024)
        assert params.walk_repeats(100) >= 1

    def test_initial_cluster_count(self):
        params = ProtocolParameters(max_size=1024, k=2.0)
        assert params.initial_cluster_count(200) == 200 // params.target_cluster_size

    def test_expected_divergence_bound(self):
        params = ProtocolParameters(max_size=1024, tau=0.2, epsilon=0.1)
        assert params.expected_divergence_bound == pytest.approx(0.2 * 1.1)

    def test_with_updates_returns_new_object(self):
        params = ProtocolParameters(max_size=1024, k=2.0)
        updated = params.with_updates(k=4.0)
        assert updated.k == 4.0
        assert params.k == 2.0
        assert updated.max_size == params.max_size

    def test_byzantine_alarm_fraction_is_one_third(self):
        params = ProtocolParameters(max_size=1024)
        assert params.byzantine_alarm_fraction == pytest.approx(1.0 / 3.0)
