"""Unit tests for the initialization phase and the NOW engine."""

from __future__ import annotations

import random

import pytest

from repro import (
    ChurnEvent,
    EngineConfig,
    NowEngine,
    NowInitializer,
    default_parameters,
)
from repro.core.initialization import InitializationReport
from repro.errors import ClusterCompromisedError, ConfigurationError
from repro.network.node import NodeRole
from repro.walks.sampler import WalkMode


class TestNowInitializer:
    def params(self):
        return default_parameters(max_size=1024, k=2.0, tau=0.1, epsilon=0.05)

    def test_build_produces_valid_partition(self):
        initializer = NowInitializer(self.params(), random.Random(1))
        state, report = initializer.build(initial_size=120, byzantine_fraction=0.1)
        assert state.network_size == 120
        assert len(state.clusters) == report.cluster_count
        assert report.cluster_count == 120 // self.params().target_cluster_size
        # Every cluster got roughly the target size.
        for size in state.clusters.sizes().values():
            assert size >= self.params().merge_threshold
            assert size <= self.params().split_threshold
        assert state.overlay.graph.is_connected()

    def test_report_costs_are_positive(self):
        initializer = NowInitializer(self.params(), random.Random(1))
        _, report = initializer.build(initial_size=120, byzantine_fraction=0.1)
        assert report.discovery_messages > 0
        assert report.agreement_messages > 0
        assert report.clusterization_messages > 0
        assert report.total_messages == (
            report.discovery_messages
            + report.agreement_messages
            + report.clusterization_messages
        )
        assert report.total_rounds > 0

    def test_message_level_discovery_mode(self):
        initializer = NowInitializer(
            self.params(), random.Random(1), discovery_mode="message"
        )
        _, report = initializer.build(initial_size=80, byzantine_fraction=0.1)
        assert report.discovery_mode == "message"
        assert report.discovery_messages > 0

    def test_auto_discovery_switches_to_model_for_large_populations(self):
        initializer = NowInitializer(
            self.params(), random.Random(1), discovery_mode="auto", message_discovery_limit=50
        )
        _, report = initializer.build(initial_size=120, byzantine_fraction=0.1)
        assert report.discovery_mode == "model"

    def test_invalid_discovery_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            NowInitializer(self.params(), random.Random(1), discovery_mode="bogus")

    def test_too_small_population_rejected(self):
        initializer = NowInitializer(self.params(), random.Random(1))
        with pytest.raises(ConfigurationError):
            initializer.build(initial_size=10)

    def test_population_byzantine_fraction(self):
        initializer = NowInitializer(self.params(), random.Random(1))
        registry = initializer.create_population(200, byzantine_fraction=0.2)
        assert len(registry.active_byzantine()) == 40

    def test_invalid_byzantine_fraction_rejected(self):
        initializer = NowInitializer(self.params(), random.Random(1))
        with pytest.raises(ConfigurationError):
            initializer.create_population(100, byzantine_fraction=1.5)


class TestNowEngineBasics:
    def test_bootstrap_and_observation(self, small_engine):
        assert small_engine.network_size == 120
        assert small_engine.cluster_count >= 2
        assert 0.0 <= small_engine.worst_cluster_fraction() < 1.0 / 3.0
        assert small_engine.check_invariants().holds
        assert small_engine.initialization_report is not None

    def test_join_adds_a_node(self, small_engine):
        before = small_engine.network_size
        report = small_engine.join()
        assert small_engine.network_size == before + 1
        assert report.event.kind.value == "join"
        assert report.operation.messages > 0
        assert small_engine.check_invariants(check_honest_majority=False).holds

    def test_leave_removes_a_node(self, small_engine):
        victim = small_engine.random_member()
        before = small_engine.network_size
        report = small_engine.leave(victim)
        assert small_engine.network_size == before - 1
        assert victim not in small_engine.active_nodes()
        assert report.operation.operation == "leave"

    def test_rejoin_of_departed_node(self, small_engine):
        victim = small_engine.random_member()
        small_engine.leave(victim)
        small_engine.join(node_id=victim)
        assert victim in small_engine.active_nodes()

    def test_leave_requires_node_id(self, small_engine):
        with pytest.raises(ConfigurationError):
            small_engine.apply_event(ChurnEvent(kind=ChurnEvent.leave(1).kind, node_id=None))

    def test_run_trace(self, small_engine):
        events = [ChurnEvent.join() for _ in range(3)]
        reports = small_engine.run_trace(events)
        assert len(reports) == 3
        assert small_engine.state.time_step == 3

    def test_history_recording_toggle(self, small_params):
        engine = NowEngine.bootstrap(
            small_params,
            initial_size=120,
            byzantine_fraction=0.1,
            seed=42,
            config=EngineConfig(record_history=False),
        )
        engine.join()
        assert engine.history == []

    def test_history_recorded_by_default(self, small_engine):
        small_engine.join()
        small_engine.join()
        assert len(small_engine.history) == 2
        assert small_engine.history[-1].time_step == 2

    def test_byzantine_join_recorded_in_registry(self, small_engine):
        report = small_engine.join(role=NodeRole.BYZANTINE)
        node_id = report.operation.node_id
        assert small_engine.state.nodes.is_byzantine(node_id)

    def test_random_member_honest_only(self, small_engine):
        byzantine = small_engine.state.nodes.active_byzantine()
        for _ in range(10):
            assert small_engine.random_member(honest_only=True) not in byzantine

    def test_metrics_scopes_populated(self, small_engine):
        small_engine.join()
        small_engine.leave(small_engine.random_member())
        assert small_engine.metrics.scope("join").messages > 0
        assert small_engine.metrics.scope("leave").messages > 0

    def test_strict_compromise_raises(self, small_params):
        """With strict mode on, a compromised cluster aborts the run."""
        engine = NowEngine.bootstrap(
            small_params,
            initial_size=120,
            byzantine_fraction=0.1,
            seed=42,
            config=EngineConfig(strict_compromise=True),
        )
        # Corrupt the ground truth of one cluster directly to force the alarm.
        cluster_id = engine.state.clusters.cluster_ids()[0]
        for node_id in engine.state.clusters.get(cluster_id).member_list():
            engine.state.nodes.get(node_id).role = NodeRole.BYZANTINE
        with pytest.raises(ClusterCompromisedError):
            engine.join()

    def test_walk_mode_configuration(self, small_params):
        engine = NowEngine.bootstrap(
            small_params,
            initial_size=120,
            byzantine_fraction=0.1,
            seed=42,
            config=EngineConfig(walk_mode=WalkMode.SIMULATED),
        )
        report = engine.join()
        assert report.operation.walk_hops >= 0
        assert engine.check_invariants(check_honest_majority=False).holds


class TestEngineMaintainsInvariants:
    def test_invariants_hold_through_mixed_churn(self, small_engine):
        rng = random.Random(3)
        for step in range(40):
            if rng.random() < 0.5:
                role = NodeRole.BYZANTINE if rng.random() < 0.1 else NodeRole.HONEST
                small_engine.join(role=role)
            else:
                small_engine.leave(small_engine.random_member())
            report = small_engine.check_invariants(check_honest_majority=False)
            assert report.holds, report.violations
        # Cluster sizes stay within the protocol's band.
        sizes = small_engine.cluster_sizes().values()
        assert all(
            small_engine.parameters.merge_threshold <= size <= small_engine.parameters.split_threshold
            for size in sizes
        )

    def test_network_size_tracks_events(self, small_engine):
        start = small_engine.network_size
        for _ in range(5):
            small_engine.join()
        for _ in range(3):
            small_engine.leave(small_engine.random_member())
        assert small_engine.network_size == start + 2
