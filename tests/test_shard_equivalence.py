"""Worker-count bit-identity of sharded runs (``repro.shard``).

The load-bearing claim of the sharded execution model: the *worker* count is
an execution choice, not a semantic one.  Running the same sharded scenario
with 1 (inline), 2 and 4 worker processes must produce bit-identical results
— same :class:`~repro.scenarios.runner.RunResult` observables, same probe
outputs, same composite state hash — because every decision that shapes the
run happens on the coordinator thread in a fixed order.  ``workers=1`` is
the in-process oracle; the property tests compare the process transports
against it under hypothesis-generated churn/adversary mixes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scenario
from repro.scenarios.probes import CorruptionTrajectoryProbe, CostLedgerProbe
from repro.shard import ShardCoordinator, run_sharded_scenario

#: RunResult fields compared across worker counts (elapsed time is wall
#: clock, the only field allowed to differ).
COMPARED_FIELDS = (
    "scenario",
    "steps",
    "events",
    "idle_steps",
    "final_size",
    "final_cluster_count",
    "final_worst_fraction",
    "peak_worst_fraction",
    "compromised_clusters",
    "stop_reason",
    "shards",
)


def _run(scenario_fields, workers):
    scenario = Scenario.from_dict(dict(scenario_fields))
    session = run_sharded_scenario(
        scenario,
        workers=workers,
        probes=[CorruptionTrajectoryProbe(), CostLedgerProbe()],
    )
    return session


def _comparable(session):
    result = session.result
    return (
        {name: getattr(result, name) for name in COMPARED_FIELDS},
        result.probes,
        session.final_state_hash,
    )


BASE = dict(
    name="equivalence",
    max_size=256,
    initial_size=200,
    tau=0.12,
    seed=11,
    steps=150,
    shards=4,
)


@pytest.mark.parametrize("workers", [2, 4])
def test_worker_counts_bit_identical_uniform_churn(workers):
    oracle = _comparable(_run(BASE, workers=1))
    assert _comparable(_run(BASE, workers=workers)) == oracle


@pytest.mark.parametrize(
    "workload",
    [
        {"kind": "growth", "target_size": 240},
        {"kind": "oscillating", "low_size": 170, "high_size": 230},
    ],
)
def test_worker_counts_bit_identical_across_workloads(workload):
    fields = dict(BASE, workload=workload, max_idle_streak=5)
    oracle = _comparable(_run(fields, workers=1))
    assert _comparable(_run(fields, workers=2)) == oracle


def test_worker_counts_bit_identical_shrink_with_floor_pulls():
    # Shrinking from 200 towards 150 drives shards below the rebalance floor
    # between barriers, so this run exercises the handoff path repeatedly.
    fields = dict(
        BASE,
        shards=2,
        workload={"kind": "shrink", "target_size": 150},
        max_idle_streak=5,
        shard_options={"barrier_interval": 16},
    )
    oracle = _comparable(_run(fields, workers=1))
    assert _comparable(_run(fields, workers=2)) == oracle


def test_worker_counts_bit_identical_with_oblivious_adversary():
    fields = dict(
        BASE,
        adversary={"kind": "oblivious"},
        adversary_weight=0.4,
    )
    oracle = _comparable(_run(fields, workers=1))
    assert _comparable(_run(fields, workers=2)) == oracle
    assert _comparable(_run(fields, workers=4)) == oracle


def test_workers_clamped_to_shard_count():
    scenario = Scenario.from_dict(dict(BASE, shards=2))
    coordinator = ShardCoordinator(scenario, workers=16)
    try:
        assert coordinator.workers == 2
    finally:
        coordinator.close()


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    adversary_weight=st.sampled_from([0.0, 0.3, 0.6]),
    barrier_interval=st.sampled_from([8, 32, 64]),
    join_probability=st.sampled_from([0.35, 0.5, 0.65]),
)
def test_property_random_mixes_worker_independent(
    seed, adversary_weight, barrier_interval, join_probability
):
    fields = dict(
        BASE,
        shards=2,
        seed=seed,
        steps=80,
        workload={"kind": "uniform", "join_probability": join_probability},
        shard_options={"barrier_interval": barrier_interval},
    )
    if adversary_weight:
        fields["adversary"] = {"kind": "oblivious"}
        fields["adversary_weight"] = adversary_weight
    oracle = _comparable(_run(fields, workers=1))
    assert _comparable(_run(fields, workers=2)) == oracle
